package serve

// Fleet mode of the serving daemon: with Config.FleetCams > 0 the
// server generates one correlated multi-camera clip set (a shared
// entity population with per-camera offsets), registers each camera as
// a source, and drives all of them in LOCKSTEP on one ticker — every
// tick feeds one frame per camera inside a batch window, so same-tick
// detector invocations across cameras coalesce into batched device
// calls (exec.BatchScheduler). A shared global re-ID registry fuses
// per-camera track ids into global object ids, and fleet-wide queries
// attach one lane per camera (POST /fleet/queries), reading back
// results merged per global id with per-source provenance.

import (
	"fmt"
	"sort"

	"vqpy"

	"vqpy/internal/exec"
	"vqpy/internal/fault"
	"vqpy/internal/fleet"
)

// The daemon deliberately does NOT wrap fleet.Engine: its per-source
// bookkeeping (Loop wrap, done/feedErr, counters, admission) is
// interleaved with stepping in ways the engine's own feed loop does
// not expose, so the daemon reuses the engine's building blocks
// (Registry, BatchScheduler, Merge) and keeps the thin attach/step
// loops local. The invariants shared with the engine — atomic
// fleet-wide attach, batch-bracketed lockstep — are pinned by tests on
// both layers.
//
// fleetState is the serving daemon's fleet-mode extension: the shared
// identity registry, the cross-source batch scheduler, and the live
// fleet-wide query registrations.
type fleetState struct {
	reg     *vqpy.GlobalRegistry
	batch   *exec.BatchScheduler
	queries map[int]*fleetQuery
}

// fleetQuery is one live fleet-wide query: its per-source lanes and
// admission estimates.
type fleetQuery struct {
	id     int
	name   string
	tenant string // owning tenant; "" in single-tenant mode
	lanes  map[string]int
	estMS  map[string]float64
}

// initFleet builds the fleet-mode source set: correlated camera clips,
// one session + dynamic mux per camera, every session's env wired to
// the shared batch scheduler.
func (s *Server) initFleet() error {
	if s.cfg.StoreDir != "" {
		return fmt.Errorf("serve: fleet mode does not combine with -store (per-camera archives of a lockstep fleet are future work)")
	}
	clip := vqpy.FleetIntersections(s.cfg.Seed, s.cfg.Seconds, s.cfg.FleetCams).Generate()
	s.fleet = &fleetState{
		reg:     vqpy.NewGlobalRegistry(0),
		queries: make(map[int]*fleetQuery),
	}
	for _, v := range clip.Videos {
		session := vqpy.NewSession(s.cfg.Seed)
		session.SetNoBurn(true)
		if s.fleet.batch == nil {
			s.fleet.batch = exec.NewBatchScheduler(0, exec.DetectorAccounts(session.Registry()))
		}
		session.Env().Interceptor = s.fleet.batch
		// Chaos chains AFTER the batch wiring so the injector wraps the
		// batch scheduler (failed calls are not batchable model work),
		// and BEFORE Serve so the executor sees the injector.
		session.SetFaults(s.cfg.Faults)
		mux, err := session.Serve(v.FPS)
		if err != nil {
			return err
		}
		mux.BindSource(v)
		s.sources[v.Name] = &source{
			name: v.Name, session: session, video: v, mux: mux,
			feed: fault.WrapSource(v, s.cfg.Faults),
		}
		s.order = append(s.order, v.Name)
	}
	return nil
}

// fleetStepLocked advances every camera by one lockstep frame inside a
// batch window. A camera whose feed fails is marked done with its
// error recorded (stepLocked) and the OTHERS keep stepping — one bad
// camera must not freeze the fleet silently. The first error is still
// returned for callers that surface it. Callers hold s.mu.
func (s *Server) fleetStepLocked() error {
	s.fleet.batch.BeginTick()
	defer s.fleet.batch.FlushTick()
	var firstErr error
	for _, name := range s.order {
		if err := s.stepLocked(name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// fleetLoadLocked sums fleet-query admission estimates resident on one
// source. Callers hold s.mu.
func (s *Server) fleetLoadLocked(source string) (float64, int) {
	if s.fleet == nil {
		return 0, 0
	}
	var load float64
	n := 0
	for _, q := range s.fleet.queries {
		if est, ok := q.estMS[source]; ok {
			load += est
			n++
		}
	}
	return load, n
}

// AttachFleet plans a fleet catalogue query for every camera and
// attaches it fleet-wide: each per-camera plan is admission-checked
// against that camera's budget before any lane exists, and the lanes
// attach atomically — a failure rolls back the ones already attached,
// so a fleet query is live everywhere or nowhere.
func (s *Server) AttachFleet(queryName string) (int, error) {
	return s.AttachFleetAs("", queryName)
}

// AttachFleetAs is AttachFleet on behalf of a tenant: every camera's
// admission check runs against the tenant's slice of that camera's
// budget, and rejections are ErrTenantBudget (429). In single-tenant
// mode the tenant name is ignored.
func (s *Server) AttachFleetAs(tenant, queryName string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return 0, ErrDraining
	}
	if s.fleet == nil {
		return 0, fmt.Errorf("serve: fleet mode disabled (run with -fleet): %w", ErrNotFound)
	}
	build, ok := fleetBuilders[queryName]
	if !ok {
		return 0, fmt.Errorf("serve: unknown fleet query %q (have %v): %w", queryName, FleetQueryNames(), ErrNotFound)
	}
	st, err := s.resolveTenantLocked(tenant)
	if err != nil {
		return 0, err
	}
	owner := ""
	if st != nil {
		owner = st.cfg.Name
	}
	// Plan and admit on every camera before attaching anywhere.
	plans := make(map[string]*vqpy.Plan, len(s.order))
	est := make(map[string]float64, len(s.order))
	for _, name := range s.order {
		src := s.sources[name]
		plan, err := src.session.PlanQuery(build(s.fleet.reg, name), src.video)
		if err != nil {
			return 0, err
		}
		if s.cfg.BudgetMS > 0 {
			if st != nil {
				slice := s.tenantSliceLocked(st)
				load, resident := s.estTenantLoadLocked(name, owner)
				if load+plan.EstPerFrameMS > slice {
					s.counters.Add("admission_rejected", 1)
					s.counters.Add("admission_rejected:"+name, 1)
					s.counters.Add("tenant_admission_rejected:"+owner, 1)
					return 0, &ErrTenantBudget{
						Tenant: owner, Source: name, EstMS: plan.EstPerFrameMS,
						LoadMS: load, SliceMS: slice, ResidentQueries: resident,
						RetryAfterSec: 1,
					}
				}
			} else {
				load, resident := s.estLoadLocked(name)
				if load+plan.EstPerFrameMS > s.cfg.BudgetMS {
					s.counters.Add("admission_rejected", 1)
					s.counters.Add("admission_rejected:"+name, 1)
					return 0, &ErrAdmission{
						Source: name, EstMS: plan.EstPerFrameMS,
						LoadMS: load, BudgetMS: s.cfg.BudgetMS, ResidentQueries: resident,
					}
				}
			}
		}
		plans[name] = plan
		est[name] = plan.EstPerFrameMS
	}
	lanes := make(map[string]int, len(s.order))
	for _, name := range s.order {
		lane, err := s.sources[name].mux.Attach(plans[name])
		if err != nil {
			for prev, l := range lanes {
				_, _ = s.sources[prev].mux.Detach(l)
			}
			return 0, fmt.Errorf("serve: fleet attach on %s: %w", name, err)
		}
		lanes[name] = lane
	}
	id := s.nextID
	s.nextID++
	s.fleet.queries[id] = &fleetQuery{id: id, name: queryName, tenant: owner, lanes: lanes, estMS: est}
	s.counters.Add("fleet_queries_attached", 1)
	s.counters.Add("fleet_queries_attached:"+queryName, 1)
	return id, nil
}

// DetachFleet removes a fleet query from every camera and returns the
// final per-source results.
func (s *Server) DetachFleet(id int) (map[string]*vqpy.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fleet == nil {
		return nil, fmt.Errorf("serve: fleet mode disabled: %w", ErrNotFound)
	}
	q, ok := s.fleet.queries[id]
	if !ok {
		return nil, fmt.Errorf("serve: unknown fleet query %d: %w", id, ErrNotFound)
	}
	out := make(map[string]*vqpy.Result, len(q.lanes))
	var firstErr error
	for name, lane := range q.lanes {
		res, err := s.sources[name].mux.Detach(lane)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		out[name] = res
	}
	delete(s.fleet.queries, id)
	s.counters.Add("fleet_queries_detached", 1)
	return out, firstErr
}

// FleetSourceSummary is one camera's slice of a fleet query's results.
type FleetSourceSummary struct {
	// FramesProcessed / MatchedFrames / Hits summarize the camera's
	// lane.
	FramesProcessed int `json:"frames_processed"`
	MatchedFrames   int `json:"matched_frames"`
	Hits            int `json:"hits"`
}

// FleetResultView is the merged cross-camera read of one fleet query.
type FleetResultView struct {
	// ID / Query identify the fleet query.
	ID    int    `json:"id"`
	Query string `json:"query"`
	// Entities lists every merged global object; CrossCamera the subset
	// matching the windowed cross-camera predicate.
	Entities    []vqpy.FleetEntity `json:"entities"`
	CrossCamera []vqpy.FleetEntity `json:"cross_camera"`
	// MinSources / WindowSec echo the predicate parameters applied.
	MinSources int     `json:"min_sources"`
	WindowSec  float64 `json:"window_sec"`
	// PerSource summarizes each camera's lane.
	PerSource map[string]FleetSourceSummary `json:"per_source"`
}

// FleetResults snapshots a fleet query's per-source results and merges
// them per global id, applying the cross-camera predicate ("seen on at
// least minSources cameras within windowSec seconds"; minSources < 2
// defaults to 2, windowSec <= 0 means unbounded).
func (s *Server) FleetResults(id, minSources int, windowSec float64) (*FleetResultView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fleet == nil {
		return nil, fmt.Errorf("serve: fleet mode disabled: %w", ErrNotFound)
	}
	q, ok := s.fleet.queries[id]
	if !ok {
		return nil, fmt.Errorf("serve: unknown fleet query %d: %w", id, ErrNotFound)
	}
	perSource := make(map[string]*vqpy.Result, len(q.lanes))
	for name, lane := range q.lanes {
		res, err := s.sources[name].mux.Snapshot(lane)
		if err != nil {
			return nil, err
		}
		perSource[name] = res
	}
	if minSources < 2 {
		minSources = 2
	}
	merged := fleet.Merge(q.name, perSource)
	view := &FleetResultView{
		ID: id, Query: q.name,
		Entities:    merged.Entities,
		CrossCamera: merged.CrossCamera(minSources, windowSec),
		MinSources:  minSources, WindowSec: windowSec,
		PerSource: make(map[string]FleetSourceSummary, len(perSource)),
	}
	s.counters.Add("fleet_results_read", 1)
	for name, res := range perSource {
		view.PerSource[name] = FleetSourceSummary{
			FramesProcessed: res.FramesProcessed,
			MatchedFrames:   res.MatchedCount(),
			Hits:            len(res.Hits),
		}
	}
	return view, nil
}

// FleetQueryStat is one live fleet query's /streamz row.
type FleetQueryStat struct {
	// ID / Name identify the query; Lanes maps camera to lane id.
	ID    int            `json:"id"`
	Name  string         `json:"name"`
	Lanes map[string]int `json:"lanes"`
	// EstMS sums the per-camera admission estimates.
	EstMS float64 `json:"est_ms_per_frame_total"`
}

// FleetStat is the /streamz fleet block.
type FleetStat struct {
	// Cams is the camera count; Entities / CrossCamera the identity
	// registry's population and its ≥2-source subset.
	Cams        int `json:"cams"`
	Entities    int `json:"entities"`
	CrossCamera int `json:"cross_camera"`
	// Batch reports the batched-inference scheduler's accounting.
	Batch vqpy.BatchStats `json:"batch"`
	// Queries lists the live fleet-wide queries.
	Queries []FleetQueryStat `json:"queries"`
}

// fleetStatLocked assembles the /streamz fleet block. Callers hold
// s.mu.
func (s *Server) fleetStatLocked() *FleetStat {
	if s.fleet == nil {
		return nil
	}
	regStats := s.fleet.reg.Stats()
	st := &FleetStat{
		Cams:        len(s.order),
		Entities:    regStats.Entities,
		CrossCamera: regStats.CrossCamera,
		Batch:       s.fleet.batch.Stats(),
	}
	ids := make([]int, 0, len(s.fleet.queries))
	for id := range s.fleet.queries {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		q := s.fleet.queries[id]
		total := 0.0
		for _, est := range q.estMS {
			total += est
		}
		st.Queries = append(st.Queries, FleetQueryStat{ID: q.id, Name: q.name, Lanes: q.lanes, EstMS: total})
	}
	return st
}
