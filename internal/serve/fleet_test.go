package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newFleetServer builds a manual-stepping fleet daemon for tests.
func newFleetServer(t *testing.T, budgetMS float64) *Server {
	t.Helper()
	s, err := NewServer(Config{Seed: 11, Seconds: 5, Speed: 0, FleetCams: 2, BudgetMS: budgetMS}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// do runs one request against the daemon's handler.
func doFleet(t *testing.T, h http.Handler, method, path, body string) (int, map[string]any) {
	t.Helper()
	var r *http.Request
	if body != "" {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	out := make(map[string]any)
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s %s: bad JSON %q: %v", method, path, w.Body.String(), err)
	}
	return w.Code, out
}

// TestFleetHTTPFlow drives the fleet surface end to end: attach a
// fleet-wide query over HTTP, step the lockstep ticker, read the merged
// per-global-id results, check /streamz's fleet block, detach.
func TestFleetHTTPFlow(t *testing.T) {
	s := newFleetServer(t, 0)
	h := s.Handler()

	code, resp := doFleet(t, h, "POST", "/fleet/queries", `{"query":"people"}`)
	if code != http.StatusOK {
		t.Fatalf("fleet attach: %d %v", code, resp)
	}
	if n := len(resp["sources"].([]any)); n != 2 {
		t.Fatalf("fleet attach covers %d sources, want 2", n)
	}
	if id := int(resp["id"].(float64)); id != 0 {
		t.Fatalf("first fleet query id = %d, want 0", id)
	}

	for i := 0; i < 30; i++ {
		if err := s.StepAll(); err != nil {
			t.Fatal(err)
		}
	}

	code, resp = doFleet(t, h, "GET", "/fleet/queries/0/results?min_sources=2&window_sec=30", "")
	if code != http.StatusOK {
		t.Fatalf("fleet results: %d %v", code, resp)
	}
	per := resp["per_source"].(map[string]any)
	if len(per) != 2 {
		t.Fatalf("per_source = %v", per)
	}
	for name, raw := range per {
		if raw.(map[string]any)["frames_processed"].(float64) != 30 {
			t.Fatalf("source %s processed %v frames, want 30", name, raw)
		}
	}

	code, resp = doFleet(t, h, "GET", "/streamz", "")
	if code != http.StatusOK {
		t.Fatal("streamz failed")
	}
	fl, ok := resp["fleet"].(map[string]any)
	if !ok {
		t.Fatalf("streamz has no fleet block: %v", resp)
	}
	if fl["cams"].(float64) != 2 {
		t.Fatalf("fleet block cams = %v", fl["cams"])
	}
	batch := fl["batch"].(map[string]any)
	if batch["Ticks"].(float64) != 30 {
		t.Fatalf("batch ticks = %v, want 30", batch["Ticks"])
	}
	if len(fl["queries"].([]any)) != 1 {
		t.Fatalf("fleet queries = %v", fl["queries"])
	}

	code, resp = doFleet(t, h, "DELETE", "/fleet/queries/0", "")
	if code != http.StatusOK {
		t.Fatalf("fleet detach: %d %v", code, resp)
	}
	if code, _ = doFleet(t, h, "GET", "/fleet/queries/0/results", ""); code != http.StatusNotFound {
		t.Fatalf("detached fleet query still readable: %d", code)
	}
}

// TestFleetAttachAdmission checks budget enforcement across sources: a
// fleet attach whose per-camera estimate exceeds any camera's budget is
// rejected with the admission error and leaves no lanes behind.
func TestFleetAttachAdmission(t *testing.T) {
	s := newFleetServer(t, 0.001)
	if _, err := s.AttachFleet("redcar"); err == nil {
		t.Fatal("expected admission rejection")
	}
	st := s.Streamz()
	if st.Fleet == nil || len(st.Fleet.Queries) != 0 {
		t.Fatalf("rejected attach left fleet queries: %+v", st.Fleet)
	}
	for _, src := range st.Sources {
		if len(src.Lanes) != 0 {
			t.Fatalf("rejected attach left lanes on %s", src.Name)
		}
	}
}

// TestFleetSurfaceDisabledWithoutFleetMode checks the fleet endpoints
// 404 on a per-source daemon.
func TestFleetSurfaceDisabledWithoutFleetMode(t *testing.T) {
	s, err := NewServer(Config{Seed: 1, Seconds: 2, Speed: 0}, []string{"cityflow"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	code, _ := doFleet(t, s.Handler(), "POST", "/fleet/queries", `{"query":"people"}`)
	if code != http.StatusNotFound {
		t.Fatalf("fleet attach on per-source daemon: %d, want 404", code)
	}
}

// TestFleetCrossCameraOverHTTP runs the planted-traveler scenario to
// completion and checks the merged view surfaces a cross-camera entity.
func TestFleetCrossCameraOverHTTP(t *testing.T) {
	s, err := NewServer(Config{Seed: 7, Seconds: 8, Speed: 0, FleetCams: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if _, err := s.AttachFleet("redcar"); err != nil {
		t.Fatal(err)
	}
	for {
		st := s.Streamz()
		done := true
		for _, src := range st.Sources {
			if !src.Done {
				done = false
			}
		}
		if done {
			break
		}
		if err := s.StepAll(); err != nil {
			t.Fatal(err)
		}
	}
	view, err := s.FleetResults(0, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Entities) == 0 {
		t.Fatal("no merged entities")
	}
	if len(view.CrossCamera) == 0 {
		t.Fatal("planted traveler not matched across cameras")
	}
	st := s.Streamz()
	if st.Fleet.CrossCamera < 1 {
		t.Fatalf("registry cross-camera count = %d", st.Fleet.CrossCamera)
	}
	if st.Fleet.Batch.Batched == 0 {
		t.Fatal("no batched invocations in fleet mode")
	}
}

// TestFleetSingleSourceStepRefused pins the lockstep rule: stepping
// one camera of a fleet would feed it outside the batch window and out
// of lockstep, so Step must refuse and point at StepAll.
func TestFleetSingleSourceStepRefused(t *testing.T) {
	s := newFleetServer(t, 0)
	name := s.SourceNamesRegistered()[0]
	if err := s.Step(name); err == nil {
		t.Fatal("single-source Step on a fleet daemon must be refused")
	}
	if err := s.StepAll(); err != nil {
		t.Fatal(err)
	}
}
