package serve

// HTTP surface of the serving daemon:
//
//	POST   /queries              {"source":"cityflow","query":"redcar"} → {"id":0,...}
//	                             (+"backfill":true to replay scanned history from the store)
//	                             (+"mode":"search" [+"track","threshold","topk"] for a
//	                             synchronous archive search — probe-then-verify over the
//	                             fed frames; requires -store and -index)
//	                             (+"mode":"fidelity" [+"accuracy"] for a synchronous
//	                             accuracy-budgeted query answered from the cheapest
//	                             archived fidelity tier meeting the floor; requires -store)
//	                             (+"mode":"text" with "text" [+"eager"] for a synchronous
//	                             language query — the cheap cascade decides most frames
//	                             and the open-vocabulary verifier answers the rest)
//	DELETE /queries/{id}         → final result JSON
//	GET    /queries/{id}/results → live result snapshot JSON
//	                             (?since=F restricts hits to frames >= F — delta polling)
//	GET    /streamz              → sources, groups, lanes, counters, store tiers,
//	                             degradation state (breakers, quarantines, chaos counters)
//	GET    /metrics              → Prometheus text exposition (DESIGN.md §11)
//	GET    /healthz              → liveness + degradation summary (always 200)
//	GET    /readyz               → readiness (503 while draining)
//
// With tenants configured (DESIGN.md §11) every query endpoint is
// tenant-scoped: the caller names its tenant with the X-Tenant header
// (or the "tenant" body field on POSTs), requests are charged against
// the tenant's token bucket, and admission runs against the tenant's
// budget slice — both rejections answer 429 with a Retry-After header.
// /streamz, /metrics and the health probes stay ungated so a saturated
// daemon remains observable.
//
// Fleet mode (vqserve -fleet N) adds the fleet-wide surface:
//
//	POST   /fleet/queries              {"query":"redcar"} → {"id":0,"sources":[...]}
//	DELETE /fleet/queries/{id}         → final per-source results
//	GET    /fleet/queries/{id}/results → merged per-global-id view
//	                                   (?min_sources=2&window_sec=30 tunes the
//	                                   cross-camera predicate)
//
// The handlers are thin JSON adapters over the Server methods; all
// concurrency control lives there.

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"vqpy"

	"vqpy/internal/metrics"
)

// queryEnvelope is the mode-independent part of every POST /queries
// body: the mode selects the entry in the queryModes registry, and the
// tenant (when the X-Tenant header is absent) names who to charge. The
// rest of the flat JSON body is decoded by the selected mode's own
// request struct, so existing bodies keep their exact shape.
type queryEnvelope struct {
	Mode   string `json:"mode,omitempty"`
	Tenant string `json:"tenant,omitempty"`
}

// attachModeRequest is the default POST /queries body (mode "" or
// "attach"): attach a catalogue query to a source's lane. Backfill asks
// for the store-replayed attach: results cover the frames scanned
// before the query arrived (requires the daemon's -store).
type attachModeRequest struct {
	Source   string `json:"source"`
	Query    string `json:"query"`
	Backfill bool   `json:"backfill,omitempty"`
}

// searchModeRequest is the "mode":"search" body: a synchronous archive
// search (requires -store and -index). No lane attaches, the reply is
// the search summary, and track/threshold/topk tune the appearance
// predicate.
type searchModeRequest struct {
	Source    string  `json:"source"`
	Query     string  `json:"query"`
	Track     *int    `json:"track,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	TopK      int     `json:"topk,omitempty"`
}

// fidelityModeRequest is the "mode":"fidelity" body: a synchronous
// accuracy-budgeted query (requires -store). Accuracy declares the
// floor the answer must meet, and the reply is the fidelity summary
// with the chosen tier.
type fidelityModeRequest struct {
	Source   string  `json:"source"`
	Query    string  `json:"query"`
	Accuracy float64 `json:"accuracy,omitempty"`
}

// textModeRequest is the "mode":"text" body: a synchronous language
// query over the source's fed frames. Eager asks the open-vocabulary
// verifier on every frame instead of lazily (the parity baseline).
type textModeRequest struct {
	Source string `json:"source"`
	Text   string `json:"text"`
	Eager  bool   `json:"eager,omitempty"`
}

// queryMode is one entry in the POST /queries mode registry: the wire
// value of the "mode" field and the handler that decodes the mode's
// typed request from the raw body and answers it. The tenant reaching
// handle is already resolved and charged by TenantGate.
type queryMode struct {
	name   string
	handle func(s *Server, w http.ResponseWriter, tenant string, body []byte)
}

// queryModes is the mode registry POST /queries dispatches through,
// mirroring vqbench's experiments table: one row per mode, each with
// its own typed request struct. An empty mode selects "attach", and
// the unknown-mode error lists exactly these names.
var queryModes = []queryMode{
	{name: "attach", handle: (*Server).modeAttach},
	{name: "search", handle: (*Server).modeSearch},
	{name: "fidelity", handle: (*Server).modeFidelity},
	{name: "text", handle: (*Server).modeText},
}

// findQueryMode resolves a wire mode name against the registry; "" is
// the attach default. The error for unknown names is derived from the
// registry so the list can never drift from the dispatch table.
func findQueryMode(name string) (queryMode, error) {
	if name == "" {
		name = "attach"
	}
	for _, m := range queryModes {
		if m.name == name {
			return m, nil
		}
	}
	quoted := make([]string, len(queryModes))
	for i, m := range queryModes {
		quoted[i] = strconv.Quote(m.name)
	}
	want := strings.Join(quoted[:len(quoted)-1], ", ") + " or " + quoted[len(quoted)-1]
	return queryMode{}, errors.New("serve: unknown mode " + strconv.Quote(name) + " (want " + want + ")")
}

// attachResponse is the POST /queries reply.
type attachResponse struct {
	ID       int    `json:"id"`
	Source   string `json:"source"`
	Query    string `json:"query"`
	Tenant   string `json:"tenant,omitempty"`
	Backfill bool   `json:"backfill,omitempty"`
}

// resultResponse wraps a query result for the wire.
type resultResponse struct {
	ID              int          `json:"id"`
	Query           string       `json:"query"`
	FramesProcessed int          `json:"frames_processed"`
	MatchedFrames   int          `json:"matched_frames"`
	Hits            int          `json:"hits"`
	Count           int          `json:"count,omitempty"`
	TrackIDs        []int        `json:"track_ids,omitempty"`
	VirtualMS       float64      `json:"virtual_ms"`
	Result          *vqpy.Result `json:"result"`
}

func wireResult(id int, res *vqpy.Result) resultResponse {
	return resultResponse{
		ID: id, Query: res.Query,
		FramesProcessed: res.FramesProcessed, MatchedFrames: res.MatchedCount(),
		Hits: len(res.Hits), Count: res.Count, TrackIDs: res.TrackIDs,
		VirtualMS: res.VirtualMS, Result: res,
	}
}

// Handler returns the daemon's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /queries", s.handleAttach)
	mux.HandleFunc("DELETE /queries/{id}", s.handleDetach)
	mux.HandleFunc("GET /queries/{id}/results", s.handleResults)
	mux.HandleFunc("POST /fleet/queries", s.handleFleetAttach)
	mux.HandleFunc("DELETE /fleet/queries/{id}", s.handleFleetDetach)
	mux.HandleFunc("GET /fleet/queries/{id}/results", s.handleFleetResults)
	mux.HandleFunc("GET /streamz", s.handleStreamz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// requestTenant resolves the tenant a request acts as: the X-Tenant
// header, or the body's "tenant" field when the header is absent.
func requestTenant(r *http.Request, bodyTenant string) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return bodyTenant
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1 (a 429 must always carry a usable hint).
func retryAfterSeconds(sec float64) string {
	n := int(math.Ceil(sec))
	if n < 1 {
		n = 1
	}
	return strconv.Itoa(n)
}

func writeErr(w http.ResponseWriter, err error) {
	var adm *ErrAdmission
	var tb *ErrTenantBudget
	var rl *ErrRateLimited
	code := http.StatusBadRequest
	switch {
	case errors.As(err, &tb):
		// Tenant-level rejections are 429, not 503: the daemon is fine,
		// THIS tenant is over ITS budget.
		w.Header().Set("Retry-After", retryAfterSeconds(tb.RetryAfterSec))
		code = http.StatusTooManyRequests
	case errors.As(err, &rl):
		w.Header().Set("Retry-After", retryAfterSeconds(rl.RetryAfterSec))
		code = http.StatusTooManyRequests
	case errors.As(err, &adm):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// handleAttach is POST /queries: decode the mode-independent envelope,
// charge the tenant, then dispatch through the mode registry. Every
// mode re-decodes its own typed request from the same flat body.
func (s *Server) handleAttach(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeErr(w, errors.New("serve: bad request body: "+err.Error()))
		return
	}
	var env queryEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		writeErr(w, errors.New("serve: bad request body: "+err.Error()))
		return
	}
	tenant := requestTenant(r, env.Tenant)
	if err := s.TenantGate(tenant); err != nil {
		writeErr(w, err)
		return
	}
	mode, err := findQueryMode(env.Mode)
	if err != nil {
		writeErr(w, err)
		return
	}
	mode.handle(s, w, tenant, body)
}

func (s *Server) modeAttach(w http.ResponseWriter, tenant string, body []byte) {
	var req attachModeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, errors.New("serve: bad request body: "+err.Error()))
		return
	}
	id, err := s.AttachNamedAs(tenant, req.Source, req.Query, req.Backfill)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, attachResponse{ID: id, Source: req.Source, Query: req.Query, Tenant: tenant, Backfill: req.Backfill})
}

func (s *Server) modeSearch(w http.ResponseWriter, _ string, body []byte) {
	var req searchModeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, errors.New("serve: bad request body: "+err.Error()))
		return
	}
	sum, err := s.Search(SearchRequest{
		Source: req.Source, Query: req.Query,
		Track: req.Track, Threshold: req.Threshold, TopK: req.TopK,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

func (s *Server) modeFidelity(w http.ResponseWriter, _ string, body []byte) {
	var req fidelityModeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, errors.New("serve: bad request body: "+err.Error()))
		return
	}
	sum, err := s.FidelityQuery(FidelityRequest{
		Source: req.Source, Query: req.Query, Accuracy: req.Accuracy,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

func (s *Server) modeText(w http.ResponseWriter, _ string, body []byte) {
	var req textModeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, errors.New("serve: bad request body: "+err.Error()))
		return
	}
	sum, err := s.TextQuery(TextRequest{Source: req.Source, Text: req.Text, Eager: req.Eager})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

func queryID(r *http.Request) (int, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return 0, errors.New("serve: bad query id: " + err.Error())
	}
	return id, nil
}

func (s *Server) handleDetach(w http.ResponseWriter, r *http.Request) {
	if err := s.TenantGate(requestTenant(r, "")); err != nil {
		writeErr(w, err)
		return
	}
	id, err := queryID(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	res, err := s.Detach(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wireResult(id, res))
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	if err := s.TenantGate(requestTenant(r, "")); err != nil {
		writeErr(w, err)
		return
	}
	id, err := queryID(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	since := 0
	if raw := r.URL.Query().Get("since"); raw != "" {
		since, err = strconv.Atoi(raw)
		if err != nil {
			writeErr(w, errors.New("serve: bad since frame: "+err.Error()))
			return
		}
	}
	res, err := s.ResultsSince(id, since)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wireResult(id, res))
}

// fleetAttachRequest is the POST /fleet/queries body.
type fleetAttachRequest struct {
	Query  string `json:"query"`
	Tenant string `json:"tenant,omitempty"`
}

// fleetAttachResponse is the POST /fleet/queries reply.
type fleetAttachResponse struct {
	ID      int      `json:"id"`
	Query   string   `json:"query"`
	Sources []string `json:"sources"`
}

func (s *Server) handleFleetAttach(w http.ResponseWriter, r *http.Request) {
	var req fleetAttachRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, errors.New("serve: bad request body: "+err.Error()))
		return
	}
	tenant := requestTenant(r, req.Tenant)
	if err := s.TenantGate(tenant); err != nil {
		writeErr(w, err)
		return
	}
	id, err := s.AttachFleetAs(tenant, req.Query)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, fleetAttachResponse{ID: id, Query: req.Query, Sources: s.SourceNamesRegistered()})
}

// fleetDetachResponse is the DELETE /fleet/queries/{id} reply: the
// final per-source result summaries.
type fleetDetachResponse struct {
	ID        int                           `json:"id"`
	PerSource map[string]FleetSourceSummary `json:"per_source"`
}

func (s *Server) handleFleetDetach(w http.ResponseWriter, r *http.Request) {
	if err := s.TenantGate(requestTenant(r, "")); err != nil {
		writeErr(w, err)
		return
	}
	id, err := queryID(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	perSource, err := s.DetachFleet(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := fleetDetachResponse{ID: id, PerSource: make(map[string]FleetSourceSummary, len(perSource))}
	for name, res := range perSource {
		resp.PerSource[name] = FleetSourceSummary{
			FramesProcessed: res.FramesProcessed,
			MatchedFrames:   res.MatchedCount(),
			Hits:            len(res.Hits),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFleetResults(w http.ResponseWriter, r *http.Request) {
	if err := s.TenantGate(requestTenant(r, "")); err != nil {
		writeErr(w, err)
		return
	}
	id, err := queryID(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	minSources := 2
	windowSec := 30.0
	if raw := r.URL.Query().Get("min_sources"); raw != "" {
		if minSources, err = strconv.Atoi(raw); err != nil {
			writeErr(w, errors.New("serve: bad min_sources: "+err.Error()))
			return
		}
	}
	if raw := r.URL.Query().Get("window_sec"); raw != "" {
		if windowSec, err = strconv.ParseFloat(raw, 64); err != nil {
			writeErr(w, errors.New("serve: bad window_sec: "+err.Error()))
			return
		}
	}
	view, err := s.FleetResults(id, minSources, windowSec)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleStreamz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Streamz())
}

// handleMetrics is GET /metrics: the Prometheus text exposition of the
// daemon's counters and gauges (DESIGN.md §11). Never tenant-gated.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", metrics.ContentType)
	_ = metrics.WriteText(w, s.MetricsFamilies())
}

// handleHealthz is the liveness probe: always 200, with the
// degradation summary (breakers, quarantines, draining) in the body.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}

// handleReadyz is the readiness probe: 503 from the moment a drain
// starts, so load balancers route away before the listener goes down.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.Ready() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}
