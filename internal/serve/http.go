package serve

// HTTP surface of the serving daemon:
//
//	POST   /queries              {"source":"cityflow","query":"redcar"} → {"id":0,...}
//	                             (+"backfill":true to replay scanned history from the store)
//	DELETE /queries/{id}         → final result JSON
//	GET    /queries/{id}/results → live result snapshot JSON
//	                             (?since=F restricts hits to frames >= F — delta polling)
//	GET    /streamz              → sources, groups, lanes, counters, store tiers
//
// The handlers are thin JSON adapters over the Server methods; all
// concurrency control lives there.

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"vqpy"
)

// attachRequest is the POST /queries body. Backfill asks for the
// store-replayed attach: results cover the frames scanned before the
// query arrived (requires the daemon's -store).
type attachRequest struct {
	Source   string `json:"source"`
	Query    string `json:"query"`
	Backfill bool   `json:"backfill,omitempty"`
}

// attachResponse is the POST /queries reply.
type attachResponse struct {
	ID       int    `json:"id"`
	Source   string `json:"source"`
	Query    string `json:"query"`
	Backfill bool   `json:"backfill,omitempty"`
}

// resultResponse wraps a query result for the wire.
type resultResponse struct {
	ID              int          `json:"id"`
	Query           string       `json:"query"`
	FramesProcessed int          `json:"frames_processed"`
	MatchedFrames   int          `json:"matched_frames"`
	Hits            int          `json:"hits"`
	Count           int          `json:"count,omitempty"`
	TrackIDs        []int        `json:"track_ids,omitempty"`
	VirtualMS       float64      `json:"virtual_ms"`
	Result          *vqpy.Result `json:"result"`
}

func wireResult(id int, res *vqpy.Result) resultResponse {
	return resultResponse{
		ID: id, Query: res.Query,
		FramesProcessed: res.FramesProcessed, MatchedFrames: res.MatchedCount(),
		Hits: len(res.Hits), Count: res.Count, TrackIDs: res.TrackIDs,
		VirtualMS: res.VirtualMS, Result: res,
	}
}

// Handler returns the daemon's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /queries", s.handleAttach)
	mux.HandleFunc("DELETE /queries/{id}", s.handleDetach)
	mux.HandleFunc("GET /queries/{id}/results", s.handleResults)
	mux.HandleFunc("GET /streamz", s.handleStreamz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	var adm *ErrAdmission
	code := http.StatusBadRequest
	switch {
	case errors.As(err, &adm):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleAttach(w http.ResponseWriter, r *http.Request) {
	var req attachRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, errors.New("serve: bad request body: "+err.Error()))
		return
	}
	var id int
	var err error
	if req.Backfill {
		id, err = s.AttachNamedBackfill(req.Source, req.Query)
	} else {
		id, err = s.AttachNamed(req.Source, req.Query)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, attachResponse{ID: id, Source: req.Source, Query: req.Query, Backfill: req.Backfill})
}

func queryID(r *http.Request) (int, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return 0, errors.New("serve: bad query id: " + err.Error())
	}
	return id, nil
}

func (s *Server) handleDetach(w http.ResponseWriter, r *http.Request) {
	id, err := queryID(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	res, err := s.Detach(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wireResult(id, res))
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	id, err := queryID(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	since := 0
	if raw := r.URL.Query().Get("since"); raw != "" {
		since, err = strconv.Atoi(raw)
		if err != nil {
			writeErr(w, errors.New("serve: bad since frame: "+err.Error()))
			return
		}
	}
	res, err := s.ResultsSince(id, since)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wireResult(id, res))
}

func (s *Server) handleStreamz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Streamz())
}
