package serve

// Golden-JSON contract tests for POST /queries: the mode registry must
// dispatch every mode with its pre-registry request/response shape
// bit-for-bit intact. Each test posts the flat JSON body a client
// would send and pins the reply's exact key set (success and error
// shapes, status codes, Retry-After) so a registry change that drifts
// the wire contract fails here, not in a client.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"slices"
	"sort"
	"strings"
	"testing"

	"vqpy/internal/config"
)

// postQueries posts a flat JSON body to POST /queries and decodes the
// reply into a generic map so tests can pin the exact key set.
func postQueries(t *testing.T, ts *httptest.Server, body, tenant string) (int, http.Header, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/queries", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("POST /queries %s: non-JSON reply: %v", body, err)
	}
	return resp.StatusCode, resp.Header, m
}

// checkShape pins a reply's key set: every required key present, no
// key outside required+optional (optional covers omitempty fields).
func checkShape(t *testing.T, label string, m map[string]any, required, optional []string) {
	t.Helper()
	got := make([]string, 0, len(m))
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	for _, k := range required {
		if _, ok := m[k]; !ok {
			t.Errorf("%s: reply is missing required key %q (got %v)", label, k, got)
		}
	}
	for _, k := range got {
		if !slices.Contains(required, k) && !slices.Contains(optional, k) {
			t.Errorf("%s: reply has unexpected key %q", label, k)
		}
	}
}

// TestUnknownModeErrorDerivedFromRegistry pins that the unknown-mode
// error lists exactly the registered modes — both against the registry
// (so the list can never drift from dispatch) and against the literal
// current string (so registry edits are a conscious contract change).
func TestUnknownModeErrorDerivedFromRegistry(t *testing.T) {
	_, err := findQueryMode("probe")
	if err == nil {
		t.Fatal("mode \"probe\" resolved")
	}
	for _, m := range queryModes {
		if !strings.Contains(err.Error(), `"`+m.name+`"`) {
			t.Errorf("unknown-mode error %q does not list registered mode %q", err, m.name)
		}
	}
	want := `serve: unknown mode "probe" (want "attach", "search", "fidelity" or "text")`
	if err.Error() != want {
		t.Errorf("unknown-mode error = %q, want %q", err, want)
	}

	// Over the wire it is a 400 with the same message.
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, _, m := postQueries(t, ts, `{"source":"cityflow","query":"redcar","mode":"probe"}`, "")
	if code != http.StatusBadRequest {
		t.Errorf("unknown mode answered %d, want 400", code)
	}
	if m["error"] != want {
		t.Errorf("HTTP error = %q, want %q", m["error"], want)
	}
	checkShape(t, "unknown-mode", m, []string{"error"}, nil)
}

// TestQueryModeContracts drives all four registered modes over one
// daemon and pins each success reply's exact JSON shape.
func TestQueryModeContracts(t *testing.T) {
	s := testServer(t, Config{StoreDir: t.TempDir(), IndexDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// attach (default mode): the pre-registry flat body, no "mode" key.
	code, _, m := postQueries(t, ts, `{"source":"cityflow","query":"redcar"}`, "")
	if code != http.StatusOK {
		t.Fatalf("attach answered %d: %v", code, m)
	}
	checkShape(t, "attach", m, []string{"id", "source", "query"}, []string{"tenant", "backfill"})
	if m["id"] != float64(0) || m["source"] != "cityflow" || m["query"] != "redcar" {
		t.Errorf("attach echo = %v", m)
	}

	// attach spelled explicitly, with backfill: same reply plus the flag.
	code, _, m = postQueries(t, ts, `{"source":"cityflow","query":"plates","mode":"attach","backfill":true}`, "")
	if code != http.StatusOK {
		t.Fatalf("attach+backfill answered %d: %v", code, m)
	}
	checkShape(t, "attach+backfill", m, []string{"id", "source", "query", "backfill"}, []string{"tenant"})
	if m["backfill"] != true {
		t.Errorf("backfill echo = %v", m["backfill"])
	}

	for s.Streamz().Sources[0].FramesFed < s.Streamz().Sources[0].ClipFrames {
		if err := s.StepAll(); err != nil {
			t.Fatal(err)
		}
	}

	// search: synchronous summary, no lane attach.
	code, _, m = postQueries(t, ts, `{"source":"cityflow","query":"plates","mode":"search"}`, "")
	if code != http.StatusOK {
		t.Fatalf("search answered %d: %v", code, m)
	}
	checkShape(t, "search", m,
		[]string{"source", "query", "track", "threshold", "used_index", "covered",
			"candidate_tracks", "verified_frames", "residual_frames", "search_frames",
			"matched_tracks", "matched_frames", "hits", "virtual_ms", "result"},
		[]string{"sims"})

	// fidelity: synchronous accuracy-budgeted summary.
	code, _, m = postQueries(t, ts, `{"source":"cityflow","query":"redcar","mode":"fidelity","accuracy":0.85}`, "")
	if code != http.StatusOK {
		t.Fatalf("fidelity answered %d: %v", code, m)
	}
	checkShape(t, "fidelity", m,
		[]string{"source", "query", "accuracy", "frames", "chosen", "live",
			"estimated_accuracy", "cost_ms", "replayed_frames", "degraded_frames",
			"residual_frames", "candidates", "matched_frames", "hits", "virtual_ms"},
		[]string{"skipped_unreadable"})
	if m["accuracy"] != 0.85 {
		t.Errorf("fidelity accuracy echo = %v", m["accuracy"])
	}

	// text: synchronous language query; lazy by default.
	code, _, m = postQueries(t, ts, `{"source":"cityflow","text":"red car stopped","mode":"text"}`, "")
	if code != http.StatusOK {
		t.Fatalf("text answered %d: %v", code, m)
	}
	textKeys := []string{"source", "text", "canonical", "frames", "undecided_frames",
		"vlm_calls", "vlm_frame_ratio", "matched_frames", "events", "hits", "virtual_ms"}
	checkShape(t, "text", m, textKeys, []string{"concepts", "eager"})
	if m["text"] != "red car stopped" || m["canonical"] != "red car stopped" {
		t.Errorf("text echo = %v / %v", m["text"], m["canonical"])
	}
	if _, ok := m["eager"]; ok {
		t.Error("lazy text reply carries the eager flag")
	}
	lazyCalls := m["vlm_calls"].(float64)
	lazyMatched := m["matched_frames"].(float64)

	// text eager: same verdicts, every frame asked.
	code, _, m = postQueries(t, ts, `{"source":"cityflow","text":"red car stopped","mode":"text","eager":true}`, "")
	if code != http.StatusOK {
		t.Fatalf("eager text answered %d: %v", code, m)
	}
	checkShape(t, "text+eager", m, append(slices.Clone(textKeys), "eager"), []string{"concepts"})
	if m["vlm_calls"].(float64) != m["frames"].(float64) {
		t.Errorf("eager asked %v of %v frames", m["vlm_calls"], m["frames"])
	}
	if m["vlm_calls"].(float64) <= lazyCalls {
		t.Errorf("eager calls %v not above lazy %v", m["vlm_calls"], lazyCalls)
	}
	if m["matched_frames"].(float64) != lazyMatched {
		t.Errorf("eager matched %v, lazy matched %v — parity broken", m["matched_frames"], lazyMatched)
	}

	// text parse errors are 400s carrying the vql position.
	code, _, m = postQueries(t, ts, `{"source":"cityflow","text":"purple banana","mode":"text"}`, "")
	if code != http.StatusBadRequest {
		t.Errorf("bad text answered %d, want 400", code)
	}
	if errStr, _ := m["error"].(string); !strings.HasPrefix(errStr, "vql: ") || !strings.Contains(errStr, " at 0") {
		t.Errorf("bad-text error = %q, want a positioned vql error", m["error"])
	}

	// unknown source on the text mode is a 404 like every other mode.
	code, _, m = postQueries(t, ts, `{"source":"nowhere","text":"red car stopped","mode":"text"}`, "")
	if code != http.StatusNotFound {
		t.Errorf("unknown source answered %d, want 404: %v", code, m)
	}

	// The text counters advanced: one lazy and one eager success above.
	st := s.Streamz()
	if st.Counters["text_queries"] != 2 {
		t.Errorf("text_queries counter = %d, want 2", st.Counters["text_queries"])
	}
	if st.Counters["text_vlm_calls"] <= st.Counters["text_undecided_frames"] {
		t.Errorf("counters: vlm_calls %d should exceed undecided %d (one eager run)",
			st.Counters["text_vlm_calls"], st.Counters["text_undecided_frames"])
	}
}

// TestTextModeTenantBilling pins that the text mode is charged against
// the tenant's token bucket like every registered mode: the burst-
// exceeding request answers 429 with a Retry-After hint, and an
// unknown tenant is refused outright.
func TestTextModeTenantBilling(t *testing.T) {
	s := testServer(t, Config{
		Tenants: []config.Tenant{
			{Name: "gold", Share: 3},
			{Name: "free", Share: 1, RatePerSec: 1, Burst: 2},
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := s.StepAll(); err != nil {
		t.Fatal(err)
	}

	body := `{"source":"cityflow","text":"red car stopped","mode":"text"}`
	for i := 0; i < 2; i++ {
		if code, _, m := postQueries(t, ts, body, "free"); code != http.StatusOK {
			t.Fatalf("burst text query %d answered %d: %v", i, code, m)
		}
	}
	code, hdr, m := postQueries(t, ts, body, "free")
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-burst text query answered %d, want 429: %v", code, m)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	checkShape(t, "rate-limited", m, []string{"error"}, nil)

	// The "tenant" body field works without the header, exactly as on
	// attach — the envelope decodes it before dispatch.
	code, _, _ = postQueries(t, ts, `{"source":"cityflow","text":"red car stopped","mode":"text","tenant":"gold"}`, "")
	if code != http.StatusOK {
		t.Errorf("body-tenant text query answered %d", code)
	}
	code, _, _ = postQueries(t, ts, body, "nobody")
	if code != http.StatusBadRequest {
		t.Errorf("unknown tenant answered %d, want 400", code)
	}
}

// TestQueryModes503Draining pins the draining error shape on the
// synchronous modes: 503 with the plain error body.
func TestQueryModes503Draining(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := s.StepAll(); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	for _, body := range []string{
		`{"source":"cityflow","query":"redcar"}`,
		`{"source":"cityflow","text":"red car stopped","mode":"text"}`,
		`{"source":"cityflow","query":"redcar","mode":"fidelity","accuracy":0.9}`,
	} {
		code, _, m := postQueries(t, ts, body, "")
		if code != http.StatusServiceUnavailable {
			t.Errorf("draining %s answered %d, want 503: %v", body, code, m)
		}
		checkShape(t, "draining", m, []string{"error"}, nil)
	}
}
