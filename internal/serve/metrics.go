package serve

// GET /metrics assembly (DESIGN.md §11): the daemon's counters and
// gauges as Prometheus text-format families. Everything derives from
// one Streamz snapshot — a single lock acquisition, no new
// bookkeeping — so a scrape costs the same as a /streamz read and the
// two views can never disagree.
//
// Naming: every metric is vqserve_*; event counters carry the _total
// suffix with the "base:target" counter convention mapped to a target
// label ("tenant" for tenant_* counters), per-source gauges carry a
// source label, breaker gauges model+source labels, tenant gauges a
// tenant label.

import (
	"vqpy/internal/metrics"
)

// breakerStateValue encodes a circuit-breaker state as a gauge:
// 0 closed, 1 half-open, 2 open (matching the escalation order, so
// alerts can threshold on > 0).
func breakerStateValue(state string) float64 {
	switch state {
	case "closed":
		return 0
	case "half-open":
		return 1
	case "open":
		return 2
	}
	return -1
}

// MetricsFamilies assembles the GET /metrics payload.
func (s *Server) MetricsFamilies() []metrics.Family {
	st := s.Streamz()
	ready := s.Ready()

	fams := metrics.CounterFamilies("vqserve", "target", st.Counters)

	up := metrics.Gauge("vqserve_up", "Daemon liveness: always 1 while the process serves.", metrics.V(1))
	draining := 0.0
	if !ready {
		draining = 1
	}
	fams = append(fams, up,
		metrics.Gauge("vqserve_draining", "1 from the moment a graceful drain starts.", metrics.V(draining)))

	srcGauge := func(name, help string, val func(SourceStat) float64) {
		fam := metrics.Gauge(name, help)
		for _, src := range st.Sources {
			fam.Samples = append(fam.Samples, metrics.LV("source", src.Name, val(src)))
		}
		fams = append(fams, fam)
	}
	srcGauge("vqserve_source_lanes", "Lanes (attached queries) riding each source's mux.",
		func(src SourceStat) float64 { return float64(len(src.Lanes)) })
	srcGauge("vqserve_source_scan_groups", "Shared-scan groups per source.",
		func(src SourceStat) float64 { return float64(len(src.Groups)) })
	srcGauge("vqserve_source_frames_fed", "Frames fed per source (monotonic).",
		func(src SourceStat) float64 { return float64(src.FramesFed) })
	srcGauge("vqserve_source_est_load_ms", "Estimated virtual ms per frame of resident queries.",
		func(src SourceStat) float64 { return src.EstLoadMS })
	srcGauge("vqserve_source_budget_ms", "Per-frame virtual-time admission budget.",
		func(src SourceStat) float64 { return src.BudgetMS })
	srcGauge("vqserve_source_virtual_ms", "Accumulated virtual model time per source.",
		func(src SourceStat) float64 { return src.VirtualMS })
	srcGauge("vqserve_source_degraded_frames", "Frames answered in degraded mode per source.",
		func(src SourceStat) float64 { return float64(src.DegradedFrames) })
	srcGauge("vqserve_source_quarantined", "1 while the source is under stall quarantine.",
		func(src SourceStat) float64 {
			if src.Quarantined {
				return 1
			}
			return 0
		})

	breakers := metrics.Gauge("vqserve_breaker_state",
		"Circuit-breaker state per model and source: 0 closed, 1 half-open, 2 open.")
	trips := metrics.Counter("vqserve_breaker_trips_total", "Circuit-breaker trips per model and source.")
	for _, src := range st.Sources {
		for _, b := range src.Breakers {
			labels := []metrics.Label{{Key: "model", Value: b.Model}, {Key: "source", Value: b.Source}}
			breakers.Samples = append(breakers.Samples,
				metrics.Sample{Labels: labels, Value: breakerStateValue(b.State)})
			trips.Samples = append(trips.Samples,
				metrics.Sample{Labels: labels, Value: float64(b.Trips)})
		}
	}
	fams = append(fams, breakers, trips)

	if st.Store != nil {
		tiers := st.Store.Tiers
		fams = append(fams,
			metrics.Gauge("vqserve_store_tier_records", "Records archived per store tier.",
				metrics.LV("tier", "scan", float64(tiers.ScanRecords)),
				metrics.LV("tier", "det", float64(tiers.DetRecords)),
				metrics.LV("tier", "label", float64(tiers.LabelRecords))),
			metrics.Gauge("vqserve_store_mem_records", "Records held in memory-only tiers.",
				metrics.V(float64(tiers.MemRecords))),
			metrics.Gauge("vqserve_store_mem_only_tiers", "Tiers degraded to memory-only after write faults.",
				metrics.V(float64(tiers.MemOnlyTiers))),
			metrics.Counter("vqserve_store_evicted_total", "Records evicted from the store.",
				metrics.V(float64(tiers.Evicted))),
			metrics.Counter("vqserve_store_faulted_reads_total", "Store reads failed by fault injection.",
				metrics.V(float64(tiers.FaultedReads))))
	}

	if st.Fidelity != nil {
		acc := metrics.Gauge("vqserve_fidelity_tier_accuracy",
			"Calibrated accuracy per archived fidelity tier.")
		cov := metrics.Gauge("vqserve_fidelity_tier_covered_frames",
			"Frames covered per archived fidelity tier.")
		for _, e := range st.Fidelity.Tiers {
			labels := []metrics.Label{{Key: "source", Value: e.Source}, {Key: "tier", Value: e.Key}}
			acc.Samples = append(acc.Samples, metrics.Sample{Labels: labels, Value: e.Accuracy})
			cov.Samples = append(cov.Samples, metrics.Sample{Labels: labels, Value: float64(e.Covered)})
		}
		fams = append(fams, acc, cov,
			metrics.Gauge("vqserve_fidelity_archived_tiers", "Archived fidelity tiers across all sources.",
				metrics.V(float64(len(st.Fidelity.Tiers)))),
			metrics.Gauge("vqserve_fidelity_replayed_frame_ratio",
				"Fraction of fidelity-served frames answered from tier archives.",
				metrics.V(st.Fidelity.ReplayedFrameRatio)))
	}

	if st.Index != nil {
		fams = append(fams,
			metrics.Gauge("vqserve_index_entries", "Appearance-index entries.",
				metrics.V(float64(st.Index.Stats.Entries))),
			metrics.Gauge("vqserve_index_partitions", "Appearance-index partitions.",
				metrics.V(float64(st.Index.Stats.Partitions))),
			metrics.Gauge("vqserve_index_pruned_frame_ratio",
				"Fraction of searched frames the index proved need no execution.",
				metrics.V(st.Index.PrunedFrameRatio)),
			metrics.Counter("vqserve_index_verified_frames_total", "Frames executed to verify search candidates.",
				metrics.V(float64(st.Index.VerifiedFrames))))
	}

	if st.Fleet != nil {
		fams = append(fams,
			metrics.Gauge("vqserve_fleet_cams", "Cameras driven in lockstep.",
				metrics.V(float64(st.Fleet.Cams))),
			metrics.Gauge("vqserve_fleet_entities", "Global re-ID entities.",
				metrics.V(float64(st.Fleet.Entities))),
			metrics.Gauge("vqserve_fleet_cross_camera", "Entities seen on 2+ cameras.",
				metrics.V(float64(st.Fleet.CrossCamera))))
	}

	if len(st.Tenants) > 0 {
		share := metrics.Gauge("vqserve_tenant_share", "Tenant QoS share (weight).")
		slice := metrics.Gauge("vqserve_tenant_budget_ms", "Tenant's slice of each source's admission budget.")
		tokens := metrics.Gauge("vqserve_tenant_tokens", "Rate-limit tokens currently in the tenant's bucket.")
		resident := metrics.Gauge("vqserve_tenant_resident_queries", "Live queries owned by the tenant.")
		for _, t := range st.Tenants {
			share.Samples = append(share.Samples, metrics.LV("tenant", t.Name, t.Share))
			slice.Samples = append(slice.Samples, metrics.LV("tenant", t.Name, t.SliceMS))
			tokens.Samples = append(tokens.Samples, metrics.LV("tenant", t.Name, t.Tokens))
			resident.Samples = append(resident.Samples, metrics.LV("tenant", t.Name, float64(t.ResidentQueries)))
		}
		fams = append(fams, share, slice, tokens, resident)
	}

	return fams
}
