package serve

// The daemon's query catalogue: named builders for the library's basic
// queries. Serving attaches basic queries only — event combinators
// (duration, temporal) aggregate over a whole clip and are answered by
// the offline paths (Execute/ExecuteShared).

import (
	"fmt"
	"sort"

	"vqpy"

	"vqpy/internal/core"
	"vqpy/internal/video"
)

// builders maps query names to fresh query values. Builders return a
// new value per call so concurrent attaches never share query state.
var builders = map[string]func() *vqpy.Query{
	"redcar": func() *vqpy.Query {
		return vqpy.NewQuery("RedCar").
			Use("car", vqpy.Car()).
			Where(vqpy.And(
				vqpy.P("car", vqpy.PropScore).Gt(0.6),
				vqpy.P("car", "color").Eq("red"),
			)).
			FrameOutput(vqpy.Sel("car", vqpy.PropTrackID), vqpy.Sel("car", "color"))
	},
	"plates": func() *vqpy.Query {
		return vqpy.NewQuery("Plates").
			Use("car", vqpy.Car()).
			Where(vqpy.P("car", vqpy.PropScore).Gt(0.7)).
			FrameOutput(vqpy.Sel("car", "plate"))
	},
	"bluecars": func() *vqpy.Query {
		return vqpy.NewQuery("BlueCars").
			Use("car", vqpy.Car()).
			Where(vqpy.And(
				vqpy.P("car", vqpy.PropScore).Gt(0.6),
				vqpy.P("car", "color").Eq("blue"),
			)).
			CountDistinct("car")
	},
	"whitecars": func() *vqpy.Query {
		t := core.NewVObj("WhiteVehicle", video.ClassCar).
			Detector("yolov8m").
			StatelessModel("color", "color_detect", true)
		return vqpy.NewQuery("WhiteCars").
			Use("w", t).
			Where(vqpy.And(
				vqpy.P("w", vqpy.PropScore).Gt(0.5),
				vqpy.P("w", "color").Eq("white"),
			))
	},
	"people": func() *vqpy.Query {
		return vqpy.NewQuery("People").
			Use("p", vqpy.Person()).
			Where(vqpy.P("p", vqpy.PropScore).Gt(0.5)).
			FrameOutput(vqpy.Sel("p", vqpy.PropTrackID))
	},
	"balls": func() *vqpy.Query {
		return vqpy.NewQuery("Balls").
			Use("b", core.NewVObj("CheapBall", video.ClassBall).Detector("ball_person_cheap")).
			Where(vqpy.P("b", vqpy.PropScore).Gt(0.3))
	},
	"speeding": func() *vqpy.Query {
		return vqpy.SpeedQuery("Speeding", "car", vqpy.Car(), 12)
	},
}

// fleetBuilders maps fleet query names to per-source builders: each is
// called once per camera with the daemon's shared identity registry, so
// the per-camera instances resolve global ids against one fleet-wide
// identity space and select PropGlobalID for mergeable results.
var fleetBuilders = map[string]func(reg *vqpy.GlobalRegistry, source string) *vqpy.Query{
	"redcar": func(reg *vqpy.GlobalRegistry, source string) *vqpy.Query {
		car := vqpy.GlobalVObj(vqpy.Car(), reg, source)
		return vqpy.NewQuery("FleetRedCar").
			Use("car", car).
			Where(vqpy.And(
				vqpy.P("car", vqpy.PropScore).Gt(0.6),
				vqpy.P("car", "color").Eq("red"),
			)).
			FrameOutput(vqpy.Sel("car", vqpy.PropGlobalID), vqpy.Sel("car", "color"))
	},
	"people": func(reg *vqpy.GlobalRegistry, source string) *vqpy.Query {
		p := vqpy.GlobalVObj(vqpy.Person(), reg, source)
		return vqpy.NewQuery("FleetPeople").
			Use("p", p).
			Where(vqpy.P("p", vqpy.PropScore).Gt(0.5)).
			FrameOutput(vqpy.Sel("p", vqpy.PropGlobalID))
	},
	"speeding": func(reg *vqpy.GlobalRegistry, source string) *vqpy.Query {
		car := vqpy.GlobalVObj(vqpy.Car(), reg, source)
		return vqpy.NewQuery("FleetSpeeding").
			Use("car", car).
			Where(vqpy.And(
				vqpy.P("car", vqpy.PropScore).Gt(0.6),
				vqpy.P("car", "velocity").Gt(12),
			)).
			FrameOutput(vqpy.Sel("car", vqpy.PropGlobalID))
	},
}

// FleetQueryNames lists the fleet-attachable query names, sorted.
func FleetQueryNames() []string {
	out := make([]string, 0, len(fleetBuilders))
	for name := range fleetBuilders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// QueryNames lists the attachable query names, sorted.
func QueryNames() []string {
	out := make([]string, 0, len(builders))
	for name := range builders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// BuildQuery returns a fresh instance of a named query.
func BuildQuery(name string) (*vqpy.Query, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown query %q (have %v): %w", name, QueryNames(), ErrNotFound)
	}
	return b(), nil
}
