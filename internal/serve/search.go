package serve

// Archive search (DESIGN.md §10): POST /queries with "mode":"search"
// answers "find this object anywhere in the archive" synchronously —
// no lane is attached. Each search first brings the archive and the
// appearance index up to the source's fed-frame watermark (warming is
// idempotent: already-archived frames replay from the store, extraction
// resumes from its coverage watermark and embeds only unseen tracks),
// then runs probe-then-verify through the library's Search path. The
// first search over a cold archive pays one full store-backed pass;
// every later search probes.

import (
	"fmt"

	"vqpy"
)

// SearchRequest is one archive-search invocation.
type SearchRequest struct {
	// Source / Query name the stream and the catalogue query whose scan
	// group defines the archive to search.
	Source string
	Query  string
	// Track is the exemplar: search returns frames whose appearance
	// matches this indexed track. Nil picks the index's deterministic
	// exemplar.
	Track *int
	// Threshold is the cosine match bar (0 uses the library default);
	// TopK keeps only the best-ranked matching tracks (0 keeps all).
	Threshold float64
	TopK      int
}

// SearchSummary is the wire-level search reply.
type SearchSummary struct {
	Source    string  `json:"source"`
	Query     string  `json:"query"`
	Track     int     `json:"track"`
	Threshold float64 `json:"threshold"`
	// UsedIndex reports the probe-then-verify path ran; Covered is the
	// index's extracted frame prefix at search time.
	UsedIndex bool `json:"used_index"`
	Covered   int  `json:"covered"`
	// CandidateTracks / VerifiedFrames / ResidualFrames / SearchFrames
	// quantify the pruning: of SearchFrames searched, VerifiedFrames
	// were executed (candidate frames verified plus the ResidualFrames
	// full-scanned past coverage); the rest were pruned by the probe.
	CandidateTracks int `json:"candidate_tracks"`
	VerifiedFrames  int `json:"verified_frames"`
	ResidualFrames  int `json:"residual_frames"`
	SearchFrames    int `json:"search_frames"`
	// MatchedTracks (best-ranked first) and Sims are the appearance
	// join's verdict; MatchedFrames and Hits count the surviving frames.
	MatchedTracks []int           `json:"matched_tracks"`
	Sims          map[int]float64 `json:"sims,omitempty"`
	MatchedFrames int             `json:"matched_frames"`
	Hits          int             `json:"hits"`
	VirtualMS     float64         `json:"virtual_ms"`
	// Result is the library result with its compiled IR stripped (the
	// IR holds predicate closures, which do not serialize).
	Result *vqpy.SearchResult `json:"result"`
}

// Search answers one archive search over a source's fed frames.
// Requires the daemon to run with -store and -index; refused in fleet
// mode and while draining. The call is synchronous and holds the server
// lock: frame feeding pauses for its duration (the warm pass replays
// archived frames, so a warm search is cheap).
func (s *Server) Search(req SearchRequest) (*SearchSummary, error) {
	q, err := BuildQuery(req.Query)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if s.fleet != nil {
		return nil, fmt.Errorf("serve: archive search is per-source; fleet mode does not support it")
	}
	if s.store == nil || s.index == nil {
		return nil, fmt.Errorf("serve: archive search requires the daemon to run with -store and -index")
	}
	src, ok := s.sources[req.Source]
	if !ok {
		return nil, fmt.Errorf("serve: unknown source %q: %w", req.Source, ErrNotFound)
	}
	fed := src.fed
	if n := len(src.video.Frames); fed > n {
		fed = n // loop mode wraps; the archive is keyed by clip frame index
	}
	if fed == 0 {
		return nil, fmt.Errorf("serve: source %q has no fed frames to search yet", req.Source)
	}

	// Bring archive coverage and the index up to the fed watermark, then
	// search. All three run on the source's session, so the cost lands
	// on its clock like the live work does.
	if err := src.session.WarmSearchArchive(q, src.video, fed, vqpy.WithStore(s.store)); err != nil {
		return nil, err
	}
	if _, err := src.session.IndexArchive(s.index, q, src.video, fed, vqpy.WithStore(s.store)); err != nil {
		return nil, err
	}
	spec := vqpy.SearchSpec{Query: q, Threshold: req.Threshold, TopK: req.TopK, Frames: fed}
	if req.Track != nil {
		spec.Track = *req.Track
	} else {
		ex, ok := s.index.Exemplar()
		if !ok {
			return nil, fmt.Errorf("serve: index holds no embeddable exemplar; pass \"track\" explicitly")
		}
		spec.Track = ex.Track
	}
	res, err := src.session.Search(src.video, spec, vqpy.WithStore(s.store), vqpy.WithIndex(s.index))
	if err != nil {
		return nil, err
	}

	s.counters.Add("searches", 1)
	s.counters.Add("search_frames", int64(fed))
	s.counters.Add("search_verified_frames", int64(res.VerifiedFrames))
	s.counters.Add("search_residual_frames", int64(res.ResidualFrames))
	matched := 0
	for _, m := range res.Matched {
		if m {
			matched++
		}
	}
	wire := *res
	wire.IR = nil
	return &SearchSummary{
		Source: req.Source, Query: req.Query, Track: spec.Track,
		Threshold: res.IR.Probe.Threshold,
		UsedIndex: res.UsedIndex, Covered: res.Covered,
		CandidateTracks: res.CandidateTracks,
		VerifiedFrames:  res.VerifiedFrames, ResidualFrames: res.ResidualFrames,
		SearchFrames:  fed,
		MatchedTracks: res.MatchedTracks, Sims: res.Sims,
		MatchedFrames: matched, Hits: len(res.Hits),
		VirtualMS: res.VirtualMS, Result: &wire,
	}, nil
}
