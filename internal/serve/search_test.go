package serve

// Archive-search tests of the serving daemon: the synchronous
// POST /queries mode=search path, the /streamz index block, and the
// configuration contract (-index requires -store, no fleet mode).

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// TestArchiveSearchOverHTTP drives the full index-then-verify loop over
// the wire: feed the clip, search once (the warm pass archives and
// extracts, so even the first search probes), search again by the
// resolved track, and read the index block off /streamz.
func TestArchiveSearchOverHTTP(t *testing.T) {
	s := testServer(t, Config{StoreDir: t.TempDir(), IndexDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for s.Streamz().Sources[0].FramesFed < s.Streamz().Sources[0].ClipFrames {
		if err := s.StepAll(); err != nil {
			t.Fatal(err)
		}
	}
	fed := s.Streamz().Sources[0].FramesFed

	search := func(body string) SearchSummary {
		t.Helper()
		resp, err := http.Post(ts.URL+"/queries", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /queries (search) status %d", resp.StatusCode)
		}
		var sum SearchSummary
		if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
			t.Fatal(err)
		}
		return sum
	}

	first := search(`{"source":"cityflow","query":"plates","mode":"search"}`)
	if !first.UsedIndex || first.Covered != fed {
		t.Fatalf("first search: used_index=%v covered=%d, want probe path over %d fed frames",
			first.UsedIndex, first.Covered, fed)
	}
	if first.SearchFrames != fed || first.VerifiedFrames >= fed {
		t.Errorf("first search verified %d of %d frames: no pruning", first.VerifiedFrames, first.SearchFrames)
	}
	if first.ResidualFrames != 0 {
		t.Errorf("fully-extracted search ran %d residual frames", first.ResidualFrames)
	}

	// Searching again by the resolved exemplar track must answer the
	// same way (and cheaper: the archive and index are warm).
	second := search(`{"source":"cityflow","query":"plates","mode":"search","track":` +
		jsonInt(first.Track) + `}`)
	if !second.UsedIndex {
		t.Error("second search did not use the index")
	}
	if !reflect.DeepEqual(first.MatchedTracks, second.MatchedTracks) {
		t.Errorf("matched tracks changed across searches: %v vs %v", first.MatchedTracks, second.MatchedTracks)
	}
	if second.MatchedFrames != first.MatchedFrames || second.Hits != first.Hits {
		t.Errorf("search answers changed: %d/%d frames, %d/%d hits",
			second.MatchedFrames, first.MatchedFrames, second.Hits, first.Hits)
	}

	var st Stats
	resp, err := http.Get(ts.URL + "/streamz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Index == nil {
		t.Fatal("streamz has no index block under -index")
	}
	if st.Index.Searches != 2 || st.Index.Stats.Probes < 2 {
		t.Errorf("index block: searches=%d probes=%d, want 2 searches with probes", st.Index.Searches, st.Index.Stats.Probes)
	}
	if st.Index.Stats.Entries == 0 || st.Index.Stats.CoveredRanges == 0 {
		t.Errorf("index block reports an empty index after extraction: %+v", st.Index.Stats)
	}
	if st.Index.PrunedFrameRatio <= 0 {
		t.Errorf("pruned_frame_ratio = %g, want > 0", st.Index.PrunedFrameRatio)
	}
}

func jsonInt(v int) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestSearchRequiresStoreAndIndex pins the error shapes of the search
// mode and the config contract of -index.
func TestSearchRequiresStoreAndIndex(t *testing.T) {
	// Search without an index is refused (HTTP 400 via the handler).
	s := testServer(t, Config{StoreDir: t.TempDir()})
	if err := s.StepAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Search(SearchRequest{Source: "cityflow", Query: "plates"}); err == nil {
		t.Error("search without -index should fail")
	}

	// An unknown mode is a 400, not a silent attach.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/queries", "application/json",
		strings.NewReader(`{"source":"cityflow","query":"plates","mode":"probe"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown mode answered %d, want 400", resp.StatusCode)
	}

	// -index without -store refuses to construct.
	if _, err := NewServer(Config{Seed: 1, Seconds: 2, IndexDir: t.TempDir()}, []string{"cityflow"}); err == nil {
		t.Error("IndexDir without StoreDir should fail construction")
	}
	// Fleet mode is incompatible with the index.
	if _, err := NewServer(Config{Seed: 1, Seconds: 2, FleetCams: 2,
		StoreDir: t.TempDir(), IndexDir: t.TempDir()}, nil); err == nil {
		t.Error("FleetCams with IndexDir should fail construction")
	}

	// Searching a source with no fed frames is refused.
	s2 := testServer(t, Config{StoreDir: t.TempDir(), IndexDir: t.TempDir()})
	if _, err := s2.Search(SearchRequest{Source: "cityflow", Query: "plates"}); err == nil {
		t.Error("search before any frame was fed should fail")
	}
}
