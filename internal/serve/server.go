// Package serve is the live serving layer on top of the dynamic
// shared-scan engine: one MuxStream per registered scenario source,
// driven by a frame-rate ticker, with queries attaching and detaching
// over HTTP while frames keep flowing. It is the daemon brain behind
// cmd/vqserve; the HTTP handlers live in http.go.
//
// Admission control is virtual-time based: every query is canary-
// profiled at attach (plan.EstPerFrameMS), and a source rejects a new
// query when the sum of estimated per-frame costs of its resident
// queries would exceed the configured per-frame budget — the serving
// analogue of refusing work that cannot be completed before the next
// frame arrives.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"vqpy"

	"vqpy/internal/config"
	"vqpy/internal/fault"
	"vqpy/internal/metrics"
)

// ErrNotFound marks lookups of unregistered sources, queries or ids
// (the HTTP layer maps it to 404).
var ErrNotFound = errors.New("not found")

// ErrDraining marks requests refused because the daemon is shutting
// down gracefully (the HTTP layer maps it to 503, and /readyz flips).
var ErrDraining = errors.New("serve: draining")

// Source-quarantine policy (DESIGN.md §9): a source that stalls this
// many consecutive polls is quarantined — the step loop stops polling
// it every tick and probes it only every quarantineProbeEvery ticks, so
// a wedged camera costs almost nothing while the healthy ones keep
// flowing. Any successful poll (or a drop, which proves the source is
// answering) lifts the quarantine.
const (
	quarantineThreshold  = 3
	quarantineProbeEvery = 4
)

// Config tunes the serving daemon.
type Config struct {
	// Seed drives scenario generation and the model zoo per source.
	Seed uint64
	// Seconds is the generated clip length per source.
	Seconds float64
	// Speed multiplies the frame ticker rate (Run): 10 means frames are
	// fed at 10× the capture rate. <= 0 disables the ticker entirely;
	// frames then advance only through Step/StepAll (tests, tools).
	Speed float64
	// BudgetMS is the per-frame virtual-time admission budget per
	// source; 0 admits everything.
	BudgetMS float64
	// Loop wraps each clip when its frames run out, standing in for an
	// endless camera feed. Without it a source stops feeding at the end
	// of the clip (queries remain attached and readable).
	Loop bool
	// StoreDir enables the tiered persistent result store (DESIGN.md
	// §7): every source's scan output is archived under this directory
	// and consulted before model work, so a daemon restarted over the
	// same directory (same seed) replays its previous passes at zero
	// model cost — the warm-restart path — and queries can attach with
	// backfill. Empty disables persistence.
	StoreDir string
	// IndexDir enables the appearance-embedding index (DESIGN.md §10)
	// over the archive: POST /queries with "mode":"search" answers
	// archive-scale "find this object" queries probe-then-verify, and
	// /streamz gains an index block. Requires StoreDir (the index is an
	// acceleration structure over archived records, never a source of
	// truth) and is incompatible with fleet mode.
	IndexDir string
	// FleetCams > 0 switches the daemon to fleet mode (DESIGN.md §8):
	// the registered sourceNames are replaced by that many correlated
	// camera clips sharing one entity population, all driven in
	// lockstep on one ticker with batched cross-source detector
	// inference and a shared global re-ID registry; fleet-wide queries
	// attach through POST /fleet/queries. Incompatible with StoreDir.
	FleetCams int
	// Tenants is the multi-tenant QoS section (DESIGN.md §11): named
	// tenants split BudgetMS between them in proportion to their shares
	// and rate-limit their HTTP requests. Empty runs the daemon in
	// single-tenant mode — one implicit tenant owning the whole budget,
	// no rate limits, admission rejections in their historical 503
	// shape. Hot-reloadable via ApplyOps.
	Tenants []config.Tenant
	// Faults installs a deterministic fault injector (DESIGN.md §9)
	// across the whole daemon: model calls gate through its schedule
	// (absorbed by retry, breakers, degradation), store I/O routes
	// through its write/read hooks, and every source is polled through
	// a fault wrapper that can stall or drop frames (stalled sources
	// quarantine instead of being re-polled every tick). Nil — or an
	// injector with an empty schedule — leaves the daemon bit-identical
	// to an unconfigured one.
	Faults *vqpy.FaultInjector
}

// source is one registered scenario feed: its own session (private
// virtual clock), clip and dynamic mux.
type source struct {
	name    string
	session *vqpy.Session
	video   *vqpy.Video
	feed    vqpy.FrameSource // poll path: the clip, fault-wrapped when chaos is on
	mux     *vqpy.MuxStream
	fed     int   // frames fed (monotonic, counts wrapped and dropped frames once each)
	done    bool  // no more frames will be fed (clip end, or a feed error)
	feedErr error // the error that stopped the feed, if any

	// Failure-domain state (only moves when Config.Faults injects
	// source faults; see stepLocked).
	ticks         int  // step attempts, the quarantine probe clock
	stalls        int  // consecutive stalled polls of the current frame
	totalStalls   int  // lifetime stalled polls
	dropped       int  // frames lost to injected drops
	quarantined   bool // stalled past the threshold; polled only on probes
	quarantinedAt int  // tick of the last quarantine entry
	quarantines   int  // lifetime quarantine entries
}

// liveQuery is one attached query's registration.
type liveQuery struct {
	id     int
	name   string
	source string
	tenant string // owning tenant; "" in single-tenant mode
	lane   int
	estMS  float64 // estimated virtual ms per frame (admission signal)
}

// Server owns the sources and the query registry. All state is guarded
// by one mutex: attach, detach, result reads and frame steps serialize,
// which keeps admission decisions consistent with the lanes actually
// riding each stream.
type Server struct {
	mu       sync.Mutex
	cfg      Config
	sources  map[string]*source
	order    []string
	queries  map[int]*liveQuery
	nextID   int
	counters *metrics.Counters
	store    *vqpy.Store // persistent result store, nil without StoreDir
	index    *vqpy.Index // appearance index over the store, nil without IndexDir
	fleet    *fleetState // fleet-mode extension, nil without FleetCams

	// Multi-tenant QoS state (tenant.go); empty maps in single-tenant
	// mode. now is the wall clock behind the token buckets, swappable in
	// tests.
	tenants     map[string]*tenantState
	tenantOrder []string
	totalShares float64
	now         func() time.Time

	stop     chan struct{}
	wg       sync.WaitGroup
	started  bool
	draining bool // Drain began: no new queries, no new frames
	drained  bool // Drain finished: muxes and store are closed
}

// scenarios maps source names to scenario generators (the daemon's
// stand-in for camera registration).
var scenarios = map[string]func(uint64, float64) vqpy.Scenario{
	"cityflow":    vqpy.DatasetCityFlow,
	"banff":       vqpy.DatasetBanff,
	"jackson":     vqpy.DatasetJackson,
	"southampton": vqpy.DatasetSouthampton,
	"auburn":      vqpy.DatasetAuburn,
	"pickup":      vqpy.DatasetPickup,
	"retail":      vqpy.DatasetRetail,
}

// SourceNames lists the registrable scenario sources, sorted.
func SourceNames() []string {
	out := make([]string, 0, len(scenarios))
	for name := range scenarios {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewServer generates one clip and opens one dynamic MuxStream per
// named source. In fleet mode (Config.FleetCams > 0) sourceNames is
// ignored: the sources are the correlated camera clips of the fleet
// scenario.
func NewServer(cfg Config, sourceNames []string) (*Server, error) {
	if cfg.Seconds <= 0 {
		cfg.Seconds = 30
	}
	if len(sourceNames) == 0 && cfg.FleetCams <= 0 {
		return nil, fmt.Errorf("serve: no sources registered")
	}
	s := &Server{
		cfg:      cfg,
		sources:  make(map[string]*source),
		queries:  make(map[int]*liveQuery),
		counters: metrics.NewCounters(),
		stop:     make(chan struct{}),
		now:      time.Now,
	}
	s.configureTenantsLocked(cfg.Tenants)
	if cfg.IndexDir != "" {
		if cfg.FleetCams > 0 {
			return nil, fmt.Errorf("serve: fleet mode is incompatible with -index")
		}
		if cfg.StoreDir == "" {
			return nil, fmt.Errorf("serve: -index requires -store (the index accelerates archive search, it is not a source of truth)")
		}
	}
	if cfg.FleetCams > 0 {
		if err := s.initFleet(); err != nil {
			return nil, err
		}
		return s, nil
	}
	if cfg.StoreDir != "" {
		// One store serves every source: records are keyed by source
		// name. A restart over the same directory finds its own archive
		// (the manifest guards the seed). With chaos on, the store's I/O
		// paths route through the injector (write failures degrade a
		// tier to memory-only; read failures become misses).
		st, err := vqpy.OpenStoreWithFaults(cfg.StoreDir, cfg.Seed, cfg.Faults)
		if err != nil {
			return nil, err
		}
		s.store = st
	}
	if cfg.IndexDir != "" {
		x, err := vqpy.OpenIndex(cfg.IndexDir, cfg.Seed)
		if err != nil {
			s.closeStore()
			return nil, err
		}
		s.index = x
	}
	for _, name := range sourceNames {
		gen, ok := scenarios[name]
		if !ok {
			s.closeStore()
			return nil, fmt.Errorf("serve: unknown source %q (have %v)", name, SourceNames())
		}
		if _, dup := s.sources[name]; dup {
			s.closeStore()
			return nil, fmt.Errorf("serve: source %q registered twice", name)
		}
		session := vqpy.NewSession(cfg.Seed)
		session.SetNoBurn(true)
		session.SetFaults(cfg.Faults)
		v := vqpy.GenerateVideo(gen(cfg.Seed, cfg.Seconds))
		mux, err := session.Serve(v.FPS)
		if err != nil {
			s.closeStore()
			return nil, err
		}
		if s.store != nil {
			mux.BindStore(s.store, v)
		} else {
			// No store: bind the source name alone so circuit breakers
			// (keyed per model AND source) and /healthz attribute
			// failures to the right camera.
			mux.BindSource(v)
		}
		s.sources[name] = &source{
			name: name, session: session, video: v, mux: mux,
			feed: fault.WrapSource(v, cfg.Faults),
		}
		s.order = append(s.order, name)
	}
	return s, nil
}

// closeStore releases the store and index during failed construction /
// shutdown.
func (s *Server) closeStore() {
	if s.index != nil {
		s.index.Close()
		s.index = nil
	}
	if s.store != nil {
		s.store.Close()
		s.store = nil
	}
}

// SourceNamesRegistered lists this server's registered sources in feed
// order (in fleet mode, the generated camera names).
func (s *Server) SourceNamesRegistered() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Run starts one ticker goroutine per source feeding frames at
// Speed × capture rate — or, in fleet mode, ONE lockstep ticker
// stepping every camera per tick inside a batch window. It is a no-op
// when Speed <= 0 (manual stepping) or when already started. Stop with
// Close.
func (s *Server) Run() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.cfg.Speed <= 0 {
		return
	}
	s.started = true
	if s.fleet != nil {
		src := s.sources[s.order[0]]
		interval := time.Duration(float64(time.Second) / (float64(src.video.FPS) * s.cfg.Speed))
		if interval <= 0 {
			interval = time.Millisecond
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					// A per-source feed error marks that source done
					// with the error recorded; the ticker keeps driving
					// the healthy cameras.
					s.mu.Lock()
					_ = s.fleetStepLocked()
					s.mu.Unlock()
				}
			}
		}()
		return
	}
	for _, name := range s.order {
		src := s.sources[name]
		interval := time.Duration(float64(time.Second) / (float64(src.video.FPS) * s.cfg.Speed))
		if interval <= 0 {
			interval = time.Millisecond
		}
		s.wg.Add(1)
		go func(name string) {
			defer s.wg.Done()
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					if err := s.Step(name); err != nil {
						return
					}
				}
			}
		}(name)
	}
}

// Close stops the tickers and closes every mux. After a Drain it only
// reaps the (already torn down) ticker state.
func (s *Server) Close() {
	s.mu.Lock()
	if s.started {
		close(s.stop)
		s.started = false
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.drained {
		return
	}
	s.drained = true
	for _, src := range s.sources {
		src.mux.Close()
	}
	s.closeStore()
}

// DrainSummary reports what a graceful drain tore down.
type DrainSummary struct {
	// QueriesDetached / FleetQueriesDetached count the live queries
	// finalized by the drain.
	QueriesDetached      int `json:"queries_detached"`
	FleetQueriesDetached int `json:"fleet_queries_detached,omitempty"`
	// StoreFlushed reports that a persistent store was synced and
	// closed.
	StoreFlushed bool `json:"store_flushed,omitempty"`
	// Results holds the final result of every per-source query that was
	// still attached, keyed by query id (not serialized: drains are
	// logged, not shipped).
	Results map[int]*vqpy.Result `json:"-"`
}

// Drain shuts the daemon down gracefully (the SIGTERM path of
// cmd/vqserve): stop admitting queries and frames, stop the tickers,
// detach and finalize every live query, then flush and close the
// store. /readyz reports 503 from the moment draining starts while
// /healthz keeps answering 200, so load balancers route away before
// the listener goes down. Idempotent; a later Close is a no-op.
func (s *Server) Drain() DrainSummary {
	s.mu.Lock()
	if s.drained {
		s.mu.Unlock()
		return DrainSummary{}
	}
	s.draining = true
	if s.started {
		close(s.stop)
		s.started = false
	}
	s.mu.Unlock()
	s.wg.Wait() // tickers gone: no frame moves after this point
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.drained {
		return DrainSummary{}
	}
	sum := DrainSummary{Results: make(map[int]*vqpy.Result)}
	ids := make([]int, 0, len(s.queries))
	for id := range s.queries {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		q := s.queries[id]
		if res, err := s.sources[q.source].mux.Detach(q.lane); err == nil {
			sum.Results[id] = res
		}
		delete(s.queries, id)
		sum.QueriesDetached++
		s.counters.Add("queries_detached", 1)
	}
	if s.fleet != nil {
		fids := make([]int, 0, len(s.fleet.queries))
		for id := range s.fleet.queries {
			fids = append(fids, id)
		}
		sort.Ints(fids)
		for _, id := range fids {
			q := s.fleet.queries[id]
			for name, lane := range q.lanes {
				_, _ = s.sources[name].mux.Detach(lane)
			}
			delete(s.fleet.queries, id)
			sum.FleetQueriesDetached++
			s.counters.Add("fleet_queries_detached", 1)
		}
	}
	for _, name := range s.order {
		s.sources[name].mux.Close()
	}
	if s.store != nil {
		sum.StoreFlushed = true
	}
	s.closeStore()
	s.drained = true
	return sum
}

// Step feeds one frame on the named source (wrapping when Loop is
// set). In fleet mode single-source stepping is refused: it would feed
// the camera outside the batch window and out of lockstep — use
// StepAll, which advances the whole fleet one tick.
func (s *Server) Step(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	if s.fleet != nil {
		return fmt.Errorf("serve: fleet sources step in lockstep; use StepAll")
	}
	return s.stepLocked(name)
}

// StepAll feeds one frame on every source, in registration order — in
// fleet mode this is one lockstep tick with its batch window.
func (s *Server) StepAll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	if s.fleet != nil {
		return s.fleetStepLocked()
	}
	for _, name := range s.order {
		if err := s.stepLocked(name); err != nil {
			return err
		}
	}
	return nil
}

func (s *Server) stepLocked(name string) error {
	src, ok := s.sources[name]
	if !ok {
		return fmt.Errorf("serve: unknown source %q: %w", name, ErrNotFound)
	}
	if src.done {
		return nil
	}
	n := len(src.video.Frames)
	idx := src.fed
	if idx >= n {
		if !s.cfg.Loop {
			src.done = true
			return nil
		}
		idx %= n
	}
	src.ticks++
	if src.quarantined && (src.ticks-src.quarantinedAt)%quarantineProbeEvery != 0 {
		// Quarantined: skip this tick, probe on the cadence only.
		return nil
	}
	f, status := fault.Poll(src.feed, idx)
	switch status {
	case fault.StatusStalled:
		src.stalls++
		src.totalStalls++
		s.counters.Add("frames_stalled:"+name, 1)
		if !src.quarantined && src.stalls >= quarantineThreshold {
			src.quarantined = true
			src.quarantinedAt = src.ticks
			src.quarantines++
			s.counters.Add("quarantine_events", 1)
			s.counters.Add("quarantined:"+name, 1)
		}
		return nil
	case fault.StatusDropped:
		// The frame is lost for good: skip it. A drop proves the source
		// is answering, so it also lifts any quarantine.
		src.stalls = 0
		src.quarantined = false
		src.dropped++
		src.fed++
		s.counters.Add("frames_dropped:"+name, 1)
		return nil
	}
	if _, err := src.mux.Feed(f); err != nil {
		// A feed error is fatal for the source: record it so /streamz
		// shows why frames stopped instead of freezing silently.
		src.done = true
		src.feedErr = err
		s.counters.Add("feed_errors:"+name, 1)
		return fmt.Errorf("serve: feed %s: %w", name, err)
	}
	src.stalls = 0
	src.quarantined = false
	src.fed++
	s.counters.Add("frames_fed:"+name, 1)
	return nil
}

// ErrAdmission marks a rejected attach (the HTTP layer maps it to 503).
type ErrAdmission struct {
	Source          string
	EstMS, LoadMS   float64
	BudgetMS        float64
	ResidentQueries int
}

// Error implements error.
func (e *ErrAdmission) Error() string {
	return fmt.Sprintf("serve: %s over budget: +%.2f est ms/frame onto %.2f resident (%d queries) exceeds %.2f",
		e.Source, e.EstMS, e.LoadMS, e.ResidentQueries, e.BudgetMS)
}

// estLoadLocked sums the admission estimates of the queries resident on
// one source — per-source attaches plus that source's share of every
// fleet-wide query.
func (s *Server) estLoadLocked(source string) (float64, int) {
	var load float64
	n := 0
	for _, q := range s.queries {
		if q.source == source {
			load += q.estMS
			n++
		}
	}
	fleetLoad, fleetN := s.fleetLoadLocked(source)
	return load + fleetLoad, n + fleetN
}

// AttachNamed plans a library query and attaches it to the named
// source's stream, returning the server-wide query id. The clip doubles
// as the planner canary, so the plan arrives with a per-frame cost
// estimate; admission rejects the query when the source's estimated
// virtual-time load per frame would exceed the budget.
func (s *Server) AttachNamed(sourceName, queryName string) (int, error) {
	return s.attach("", sourceName, queryName, false)
}

// AttachNamedAs is AttachNamed on behalf of a tenant: admission runs
// against the tenant's slice of the source budget and rejections are
// ErrTenantBudget (429) instead of ErrAdmission (503). In
// single-tenant mode the tenant name is ignored.
func (s *Server) AttachNamedAs(tenant, sourceName, queryName string, backfill bool) (int, error) {
	return s.attach(tenant, sourceName, queryName, backfill)
}

// AttachNamedBackfill is AttachNamed with history: the query replays
// every frame the source already scanned from the persistent store
// before going live, so its results cover the whole stream as if it had
// been attached at frame zero. Requires the daemon to run with a store
// (Config.StoreDir) whose archive covers the scanned frames.
func (s *Server) AttachNamedBackfill(sourceName, queryName string) (int, error) {
	return s.attach("", sourceName, queryName, true)
}

func (s *Server) attach(tenant, sourceName, queryName string, backfill bool) (int, error) {
	q, err := BuildQuery(queryName)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return 0, ErrDraining
	}
	src, ok := s.sources[sourceName]
	if !ok {
		return 0, fmt.Errorf("serve: unknown source %q: %w", sourceName, ErrNotFound)
	}
	if backfill && s.store == nil {
		return 0, fmt.Errorf("serve: backfill attach requires the daemon to run with -store")
	}
	// Plan first (the clip doubles as the canary, so the plan arrives
	// with a per-frame cost) and admit before any lane state exists —
	// in particular before a backfill replays the scanned history, work
	// a rejection would otherwise throw away.
	plan, err := src.session.PlanQuery(q, src.video)
	if err != nil {
		return 0, err
	}
	st, err := s.resolveTenantLocked(tenant)
	if err != nil {
		return 0, err
	}
	owner := ""
	if st != nil {
		owner = st.cfg.Name
	}
	if s.cfg.BudgetMS > 0 {
		if st != nil {
			// Multi-tenant: admit against the tenant's slice only. The
			// slices partition the budget, so a tenant filling its slice
			// cannot eat into anyone else's headroom — and a rejection
			// here says nothing about the other tenants.
			slice := s.tenantSliceLocked(st)
			load, resident := s.estTenantLoadLocked(sourceName, owner)
			if load+plan.EstPerFrameMS > slice {
				s.counters.Add("admission_rejected", 1)
				s.counters.Add("admission_rejected:"+sourceName, 1)
				s.counters.Add("tenant_admission_rejected:"+owner, 1)
				return 0, &ErrTenantBudget{
					Tenant: owner, Source: sourceName, EstMS: plan.EstPerFrameMS,
					LoadMS: load, SliceMS: slice, ResidentQueries: resident,
					RetryAfterSec: 1,
				}
			}
		} else {
			load, resident := s.estLoadLocked(sourceName)
			if load+plan.EstPerFrameMS > s.cfg.BudgetMS {
				s.counters.Add("admission_rejected", 1)
				s.counters.Add("admission_rejected:"+sourceName, 1)
				return 0, &ErrAdmission{
					Source: sourceName, EstMS: plan.EstPerFrameMS,
					LoadMS: load, BudgetMS: s.cfg.BudgetMS, ResidentQueries: resident,
				}
			}
		}
	}
	var lane int
	if backfill {
		lane, err = src.mux.AttachBackfill(plan)
	} else {
		lane, err = src.mux.Attach(plan)
	}
	if err != nil {
		return 0, err
	}
	id := s.nextID
	s.nextID++
	s.queries[id] = &liveQuery{
		id: id, name: queryName, source: sourceName, tenant: owner,
		lane: lane, estMS: plan.EstPerFrameMS,
	}
	s.counters.Add("queries_attached", 1)
	s.counters.Add("queries_attached:"+queryName, 1)
	if backfill {
		s.counters.Add("queries_backfilled", 1)
	}
	return id, nil
}

// Detach removes a query and returns its final result.
func (s *Server) Detach(id int) (*vqpy.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queries[id]
	if !ok {
		return nil, fmt.Errorf("serve: unknown query %d: %w", id, ErrNotFound)
	}
	res, err := s.sources[q.source].mux.Detach(q.lane)
	if err != nil {
		return nil, err
	}
	delete(s.queries, id)
	s.counters.Add("queries_detached", 1)
	return res, nil
}

// Results snapshots a live query's accumulated result.
func (s *Server) Results(id int) (*vqpy.Result, error) {
	return s.ResultsSince(id, 0)
}

// ResultsSince snapshots a live query's result with its frame hits
// restricted to frame indices >= since — the delta-polling read path: a
// client remembers the last frame it saw and asks only for what is new
// (and a backfilled query can be asked for exactly its replayed
// history). Aggregate fields (matched counts, video-level aggregation)
// always reflect the whole residency; since <= 0 returns everything.
func (s *Server) ResultsSince(id int, since int) (*vqpy.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queries[id]
	if !ok {
		return nil, fmt.Errorf("serve: unknown query %d: %w", id, ErrNotFound)
	}
	s.counters.Add("results_read", 1)
	res, err := s.sources[q.source].mux.Snapshot(q.lane)
	if err != nil {
		return nil, err
	}
	if since > 0 {
		// The snapshot's hit slice is a private copy; filter in place.
		kept := res.Hits[:0]
		for _, h := range res.Hits {
			if h.FrameIdx >= since {
				kept = append(kept, h)
			}
		}
		res.Hits = kept
	}
	return res, nil
}

// Health is the GET /healthz payload. The endpoint always answers 200
// — it reports liveness plus a degradation summary; readiness (503
// while draining) is /readyz's job.
type Health struct {
	// Status is "ok", "degraded" (a breaker is open or a source is
	// quarantined) or "draining".
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	// Quarantined lists the sources currently under stall quarantine.
	Quarantined []string `json:"quarantined,omitempty"`
	// OpenBreakers lists every circuit breaker not currently closed.
	OpenBreakers []fault.BreakerStat `json:"open_breakers,omitempty"`
}

// Health assembles the /healthz view.
func (s *Server) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{Status: "ok", Draining: s.draining}
	for _, name := range s.order {
		if s.sources[name].quarantined {
			h.Quarantined = append(h.Quarantined, name)
		}
	}
	for _, b := range s.cfg.Faults.BreakerStats() {
		if b.State != "closed" {
			h.OpenBreakers = append(h.OpenBreakers, b)
		}
	}
	switch {
	case s.draining:
		h.Status = "draining"
	case len(h.Quarantined) > 0 || len(h.OpenBreakers) > 0:
		h.Status = "degraded"
	}
	return h
}

// Ready reports whether the daemon accepts new work (false from the
// moment a drain starts).
func (s *Server) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining
}

// SourceStat is one source's /streamz row.
type SourceStat struct {
	Name         string           `json:"name"`
	FPS          int              `json:"fps"`
	ClipFrames   int              `json:"clip_frames"`
	FramesFed    int              `json:"frames_fed"`
	Done         bool             `json:"done"`
	FeedError    string           `json:"feed_error,omitempty"`
	Queries      int              `json:"queries"`
	Groups       []string         `json:"groups"`
	GroupMembers []int            `json:"group_members"`
	GroupStats   []vqpy.GroupStat `json:"group_stats"`
	Lanes        []vqpy.LaneStat  `json:"lanes"`
	EstLoadMS    float64          `json:"est_load_ms_per_frame"`
	BudgetMS     float64          `json:"budget_ms_per_frame"`
	VirtualMS    float64          `json:"virtual_ms_total"`

	// Degradation state (chaos runs; zero-valued otherwise).
	Stalls         int                 `json:"stalls,omitempty"`
	Dropped        int                 `json:"dropped,omitempty"`
	Quarantined    bool                `json:"quarantined,omitempty"`
	Quarantines    int                 `json:"quarantines,omitempty"`
	DegradedFrames int                 `json:"degraded_frames,omitempty"`
	Breakers       []fault.BreakerStat `json:"breakers,omitempty"`
}

// QueryStat is one live query's /streamz row.
type QueryStat struct {
	ID        int     `json:"id"`
	Name      string  `json:"name"`
	Source    string  `json:"source"`
	Tenant    string  `json:"tenant,omitempty"`
	Lane      int     `json:"lane"`
	EstMS     float64 `json:"est_ms_per_frame"`
	Frames    int     `json:"frames"`
	VirtualMS float64 `json:"virtual_ms"`
	Matched   int     `json:"matched_frames"`
}

// StoreStat is the /streamz persistence row: the result store's tier
// shape plus its hit/miss counters.
type StoreStat struct {
	Dir      string           `json:"dir"`
	Tiers    vqpy.StoreStats  `json:"tiers"`
	Counters map[string]int64 `json:"counters"`
}

// IndexStat is the /streamz appearance-index block, present when the
// daemon runs with -index: the index shape plus the accumulated
// archive-search activity.
type IndexStat struct {
	Dir string `json:"dir"`
	// Stats is the index's own shape and probe counters (entries,
	// partitions, probes, candidates, pruned entries, faulted reads).
	Stats vqpy.IndexStats `json:"stats"`
	// Searches counts POST /queries mode=search requests served;
	// SearchFrames the frames those searches spanned, VerifiedFrames the
	// frames actually executed (candidate frames verified plus residual
	// frames full-scanned past coverage), ResidualFrames the residual
	// component alone.
	Searches       int64 `json:"searches"`
	SearchFrames   int64 `json:"search_frames"`
	VerifiedFrames int64 `json:"verified_frames"`
	ResidualFrames int64 `json:"residual_frames"`
	// PrunedFrameRatio is the fraction of searched frames the index
	// proved need no execution: 1 − verified/searched.
	PrunedFrameRatio float64 `json:"pruned_frame_ratio"`
}

// FidelityStat is the /streamz fidelity block, present when the daemon
// runs with -store: the archived tier manifests plus the accumulated
// fidelity-query activity (DESIGN.md §12).
type FidelityStat struct {
	// Tiers lists every archived fidelity across sources, with coverage
	// and calibrated accuracy.
	Tiers []vqpy.FidelityEntry `json:"tiers,omitempty"`
	// Queries counts POST /queries mode=fidelity requests served; the
	// decision counters split them by outcome.
	Queries       int64 `json:"queries"`
	TierDecisions int64 `json:"tier_decisions"`
	LiveDecisions int64 `json:"live_decisions"`
	// ReplayedFrames were answered from tier archives at bookkeeping
	// cost; DegradedFrames fell back live after archive misses;
	// ResidualFrames were live-scanned past tier coverage.
	ReplayedFrames int64 `json:"replayed_frames"`
	DegradedFrames int64 `json:"degraded_frames"`
	ResidualFrames int64 `json:"residual_frames"`
	// ReplayedFrameRatio is the fraction of fidelity-served frames that
	// came from tier archives: replayed / (replayed+degraded+residual).
	ReplayedFrameRatio float64 `json:"replayed_frame_ratio"`
}

// ChaosStat is the /streamz fault-injection block, present when the
// daemon runs with an injector.
type ChaosStat struct {
	// Enabled mirrors the injector's live toggle.
	Enabled bool `json:"enabled"`
	// TrippedBreakers counts breakers currently open or half-open;
	// Breakers lists every breaker that has seen a failure.
	TrippedBreakers int                 `json:"tripped_breakers"`
	Breakers        []fault.BreakerStat `json:"breakers,omitempty"`
	// Counters are the injector's event counters (injections by kind
	// and target, breaker trips, degradations).
	Counters map[string]int64 `json:"counters"`
}

// Stats is the /streamz payload.
type Stats struct {
	Sources  []SourceStat     `json:"sources"`
	Queries  []QueryStat      `json:"queries"`
	Tenants  []TenantStat     `json:"tenants,omitempty"`
	Counters map[string]int64 `json:"counters"`
	Store    *StoreStat       `json:"store,omitempty"`
	Index    *IndexStat       `json:"index,omitempty"`
	Fidelity *FidelityStat    `json:"fidelity,omitempty"`
	Fleet    *FleetStat       `json:"fleet,omitempty"`
	Chaos    *ChaosStat       `json:"chaos,omitempty"`
}

// Streamz assembles the live stats snapshot.
func (s *Server) Streamz() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Counters: s.counters.Snapshot(),
		Tenants:  s.tenantStatsLocked(),
		Fleet:    s.fleetStatLocked(),
	}
	if inj := s.cfg.Faults; inj != nil {
		st.Chaos = &ChaosStat{
			Enabled:         inj.Enabled(),
			TrippedBreakers: inj.TrippedBreakers(),
			Breakers:        inj.BreakerStats(),
			Counters:        inj.Counters().Snapshot(),
		}
	}
	if s.store != nil {
		st.Store = &StoreStat{
			Dir: s.store.Dir(), Tiers: s.store.TierStats(),
			Counters: s.store.Counters().Snapshot(),
		}
		fs := &FidelityStat{
			Queries:        s.counters.Get("fidelity_queries"),
			TierDecisions:  s.counters.Get("fidelity_tier_decisions"),
			LiveDecisions:  s.counters.Get("fidelity_live_decisions"),
			ReplayedFrames: s.counters.Get("fidelity_replayed_frames"),
			DegradedFrames: s.counters.Get("fidelity_degraded_frames"),
			ResidualFrames: s.counters.Get("fidelity_residual_frames"),
		}
		for _, name := range s.order {
			fs.Tiers = append(fs.Tiers, s.store.Fidelities(name)...)
		}
		if total := fs.ReplayedFrames + fs.DegradedFrames + fs.ResidualFrames; total > 0 {
			fs.ReplayedFrameRatio = float64(fs.ReplayedFrames) / float64(total)
		}
		st.Fidelity = fs
	}
	if s.index != nil {
		searched := s.counters.Get("search_frames")
		executed := s.counters.Get("search_verified_frames")
		ratio := 0.0
		if searched > 0 {
			ratio = 1 - float64(executed)/float64(searched)
		}
		st.Index = &IndexStat{
			Dir: s.index.Dir(), Stats: s.index.TierStats(),
			Searches:         s.counters.Get("searches"),
			SearchFrames:     searched,
			VerifiedFrames:   s.counters.Get("search_verified_frames"),
			ResidualFrames:   s.counters.Get("search_residual_frames"),
			PrunedFrameRatio: ratio,
		}
	}
	for _, name := range s.order {
		src := s.sources[name]
		load, resident := s.estLoadLocked(name)
		feedErr := ""
		if src.feedErr != nil {
			feedErr = src.feedErr.Error()
		}
		groupStats := src.mux.GroupStats()
		degraded := 0
		for _, g := range groupStats {
			degraded += g.Degraded
		}
		st.Sources = append(st.Sources, SourceStat{
			Name: name, FPS: src.video.FPS, ClipFrames: len(src.video.Frames),
			FramesFed: src.fed, Done: src.done, FeedError: feedErr, Queries: resident,
			Groups: src.mux.Groups(), GroupMembers: src.mux.GroupMembers(),
			GroupStats: groupStats,
			Lanes:      src.mux.LaneStats(), EstLoadMS: load, BudgetMS: s.cfg.BudgetMS,
			VirtualMS: src.session.Clock().TotalMS(),
			Stalls:    src.totalStalls, Dropped: src.dropped,
			Quarantined: src.quarantined, Quarantines: src.quarantines,
			DegradedFrames: degraded,
			Breakers:       s.cfg.Faults.BreakerStatsFor(name),
		})
	}
	// Per-query rows come from the lane stats already collected above —
	// no result copying on the stats path.
	lanes := make(map[string]map[int]vqpy.LaneStat, len(st.Sources))
	for _, src := range st.Sources {
		byLane := make(map[int]vqpy.LaneStat, len(src.Lanes))
		for _, l := range src.Lanes {
			byLane[l.ID] = l
		}
		lanes[src.Name] = byLane
	}
	ids := make([]int, 0, len(s.queries))
	for id := range s.queries {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		q := s.queries[id]
		qs := QueryStat{ID: q.id, Name: q.name, Source: q.source, Tenant: q.tenant, Lane: q.lane, EstMS: q.estMS}
		if l, ok := lanes[q.source][q.lane]; ok {
			qs.Frames = l.Frames
			qs.VirtualMS = l.VirtualMS
			qs.Matched = l.Matched
		}
		st.Queries = append(st.Queries, qs)
	}
	return st
}
