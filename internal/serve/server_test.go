package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func testServer(t *testing.T, cfg Config, sources ...string) *Server {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.Seconds == 0 {
		cfg.Seconds = 4
	}
	if len(sources) == 0 {
		sources = []string{"cityflow"}
	}
	s, err := NewServer(cfg, sources)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestServerAttachDetachFlow drives the whole serving flow in-process:
// register two queries sharing one scan group, feed frames, read live
// results, detach one and check the group shrinks without disturbing
// the other.
func TestServerAttachDetachFlow(t *testing.T) {
	s := testServer(t, Config{})

	red, err := s.AttachNamed("cityflow", "redcar")
	if err != nil {
		t.Fatal(err)
	}
	plates, err := s.AttachNamed("cityflow", "plates")
	if err != nil {
		t.Fatal(err)
	}
	st := s.Streamz()
	if len(st.Sources) != 1 || st.Sources[0].Queries != 2 {
		t.Fatalf("streamz sources = %+v", st.Sources)
	}
	if len(st.Sources[0].GroupMembers) != 1 || st.Sources[0].GroupMembers[0] != 2 {
		t.Fatalf("group members = %v, want [2] (redcar+plates share the car scan)", st.Sources[0].GroupMembers)
	}

	for i := 0; i < 10; i++ {
		if err := s.StepAll(); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := s.Results(red)
	if err != nil {
		t.Fatal(err)
	}
	if snap.FramesProcessed != 10 {
		t.Errorf("live result frames = %d, want 10", snap.FramesProcessed)
	}

	final, err := s.Detach(plates)
	if err != nil {
		t.Fatal(err)
	}
	if final.FramesProcessed != 10 || final.Query != "Plates" {
		t.Errorf("final result = %s over %d frames", final.Query, final.FramesProcessed)
	}
	st = s.Streamz()
	if got := st.Sources[0].GroupMembers; len(got) != 1 || got[0] != 1 {
		t.Errorf("group members after detach = %v, want [1]", got)
	}
	if _, err := s.Detach(plates); !errors.Is(err, ErrNotFound) {
		t.Errorf("double detach error = %v, want ErrNotFound", err)
	}
	if _, err := s.Results(red); err != nil {
		t.Errorf("surviving query unreadable after sibling detach: %v", err)
	}
	if got := s.counters.Get("queries_attached"); got != 2 {
		t.Errorf("queries_attached = %d", got)
	}
}

// TestServerAdmission checks the virtual-time budget: a tiny budget
// admits the first query and rejects the second with ErrAdmission.
func TestServerAdmission(t *testing.T) {
	s := testServer(t, Config{BudgetMS: 40})
	if _, err := s.AttachNamed("cityflow", "redcar"); err != nil {
		t.Fatalf("first attach rejected: %v", err)
	}
	_, err := s.AttachNamed("cityflow", "people")
	var adm *ErrAdmission
	if !errors.As(err, &adm) {
		t.Fatalf("second attach error = %v, want ErrAdmission", err)
	}
	if adm.BudgetMS != 40 || adm.ResidentQueries != 1 {
		t.Errorf("admission detail = %+v", adm)
	}
	// The rejected query left no lane behind.
	if st := s.Streamz(); st.Sources[0].Queries != 1 || len(st.Sources[0].Lanes) != 1 {
		t.Errorf("rejected attach leaked a lane: %+v", st.Sources[0])
	}
	if got := s.counters.Get("admission_rejected"); got != 1 {
		t.Errorf("admission_rejected = %d", got)
	}
}

// TestServerLoopAndDone pins the two end-of-clip behaviours: without
// Loop the source stops feeding; with Loop it wraps.
func TestServerLoopAndDone(t *testing.T) {
	s := testServer(t, Config{Seconds: 1})
	n := len(s.sources["cityflow"].video.Frames)
	for i := 0; i < n+5; i++ {
		if err := s.StepAll(); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Streamz(); !st.Sources[0].Done || st.Sources[0].FramesFed != n {
		t.Errorf("non-loop source: done=%v fed=%d want fed=%d", st.Sources[0].Done, st.Sources[0].FramesFed, n)
	}

	lp := testServer(t, Config{Seconds: 1, Loop: true, Seed: 7})
	for i := 0; i < n+5; i++ {
		if err := lp.StepAll(); err != nil {
			t.Fatal(err)
		}
	}
	if st := lp.Streamz(); st.Sources[0].Done || st.Sources[0].FramesFed != n+5 {
		t.Errorf("loop source: done=%v fed=%d want fed=%d", st.Sources[0].Done, st.Sources[0].FramesFed, n+5)
	}
}

// TestHTTPFlow exercises the daemon's wire surface end to end against a
// httptest server: attach via POST, read /streamz and live results,
// detach via DELETE, and check the error statuses (404 unknown query
// name and id, 503 admission).
func TestHTTPFlow(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, attachResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/queries", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out attachResponse
		_ = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		return resp, out
	}

	resp, red := post(`{"source":"cityflow","query":"redcar"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("attach status = %d", resp.StatusCode)
	}
	resp, _ = post(`{"source":"cityflow","query":"plates"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("attach status = %d", resp.StatusCode)
	}
	if resp, _ := post(`{"source":"cityflow","query":"nonsense"}`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown query status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := post(`{"source":"mars","query":"redcar"}`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown source status = %d, want 404", resp.StatusCode)
	}

	for i := 0; i < 6; i++ {
		if err := s.StepAll(); err != nil {
			t.Fatal(err)
		}
	}

	var st Stats
	resp2, err := http.Get(ts.URL + "/streamz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if len(st.Sources) != 1 || st.Sources[0].Queries != 2 {
		t.Fatalf("streamz = %+v", st.Sources)
	}
	if got := st.Sources[0].GroupMembers; len(got) != 1 || got[0] != 2 {
		t.Errorf("streamz group members = %v, want [2]", got)
	}

	resp3, err := http.Get(ts.URL + "/queries/" + itoa(red.ID) + "/results")
	if err != nil {
		t.Fatal(err)
	}
	var live resultResponse
	if err := json.NewDecoder(resp3.Body).Decode(&live); err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if live.FramesProcessed != 6 {
		t.Errorf("live frames = %d, want 6", live.FramesProcessed)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/queries/"+itoa(red.ID), nil)
	resp4, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var fin resultResponse
	if err := json.NewDecoder(resp4.Body).Decode(&fin); err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusOK || fin.FramesProcessed != 6 {
		t.Errorf("detach = %d, frames %d", resp4.StatusCode, fin.FramesProcessed)
	}

	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/queries/"+itoa(red.ID), nil)
	resp5, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp5.Body.Close()
	if resp5.StatusCode != http.StatusNotFound {
		t.Errorf("double delete status = %d, want 404", resp5.StatusCode)
	}
}

// TestHTTPAdmission503 maps budget rejection onto the wire.
func TestHTTPAdmission503(t *testing.T) {
	s := testServer(t, Config{BudgetMS: 40})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/queries", "application/json",
		strings.NewReader(`{"source":"cityflow","query":"redcar"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first attach status = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/queries", "application/json",
		strings.NewReader(`{"source":"cityflow","query":"people"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("over-budget attach status = %d, want 503", resp.StatusCode)
	}
}

// TestTickerRunsConcurrentlyWithAttach starts the real ticker and
// attaches/detaches against it — the daemon's actual concurrency shape,
// exercised under -race in CI.
func TestTickerRunsConcurrentlyWithAttach(t *testing.T) {
	s := testServer(t, Config{Seconds: 2, Speed: 200, Loop: true})
	s.Run()
	for i := 0; i < 5; i++ {
		id, err := s.AttachNamed("cityflow", "redcar")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Results(id); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Detach(id); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Streamz().Sources[0].FramesFed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ticker fed no frames within 5s")
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
}

func itoa(v int) string { return strconv.Itoa(v) }
