package serve

// Persistence tests of the serving daemon: warm restarts over a store
// directory, backfill attaches (in-process and over HTTP) and the
// ?since= delta read path.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestWarmRestartServesFromStore runs one daemon over a store directory
// to the end of its clip, shuts it down, and starts a second one over
// the same directory: the second scan must do strictly less model work
// (its frames replay from the archive) while answering identically.
func TestWarmRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Seed: 42, Seconds: 4, StoreDir: dir}

	runPass := func() (matched int, virtualMS float64) {
		s := testServer(t, cfg)
		id, err := s.AttachNamed("cityflow", "redcar")
		if err != nil {
			t.Fatal(err)
		}
		for s.Streamz().Sources[0].FramesFed < s.Streamz().Sources[0].ClipFrames {
			if err := s.StepAll(); err != nil {
				t.Fatal(err)
			}
		}
		res, err := s.Results(id)
		if err != nil {
			t.Fatal(err)
		}
		st := s.Streamz()
		return res.MatchedCount(), st.Sources[0].VirtualMS
	}

	coldMatched, coldMS := runPass()
	warmMatched, warmMS := runPass()
	if warmMatched != coldMatched {
		t.Errorf("warm restart changed answers: %d matched vs %d", warmMatched, coldMatched)
	}
	if warmMS >= coldMS {
		t.Errorf("warm restart did not reduce model work: %.1f ms vs %.1f ms", warmMS, coldMS)
	}
	if warmMS > coldMS/2 {
		t.Errorf("warm restart only reached %.1f ms vs cold %.1f ms; expected the scan to replay from the store", warmMS, coldMS)
	}
}

// TestBackfillAttachOverStore checks the in-process backfill path: a
// query attached mid-clip with AttachNamedBackfill reports results for
// every frame fed so far, identical to a resident sibling's view of the
// stream length.
func TestBackfillAttachOverStore(t *testing.T) {
	s := testServer(t, Config{Seed: 42, Seconds: 4, StoreDir: t.TempDir()})

	resident, err := s.AttachNamed("cityflow", "redcar")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := s.StepAll(); err != nil {
			t.Fatal(err)
		}
	}
	late, err := s.AttachNamedBackfill("cityflow", "plates")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.StepAll(); err != nil {
			t.Fatal(err)
		}
	}
	resResident, err := s.Results(resident)
	if err != nil {
		t.Fatal(err)
	}
	resLate, err := s.Results(late)
	if err != nil {
		t.Fatal(err)
	}
	if resLate.FramesProcessed != resResident.FramesProcessed {
		t.Errorf("backfilled query covers %d frames, resident covers %d",
			resLate.FramesProcessed, resResident.FramesProcessed)
	}
	if got := s.counters.Get("queries_backfilled"); got != 1 {
		t.Errorf("queries_backfilled = %d, want 1", got)
	}
}

// TestBackfillRequiresStore pins the error shape: without -store the
// backfill attach is refused.
func TestBackfillRequiresStore(t *testing.T) {
	s := testServer(t, Config{})
	if _, err := s.AttachNamedBackfill("cityflow", "redcar"); err == nil {
		t.Fatal("backfill without a store should fail")
	}
}

// TestResultsSinceFiltersHits checks the delta read path: ?since=F
// returns only hits at frame F or later, leaving aggregates whole.
func TestResultsSinceFiltersHits(t *testing.T) {
	s := testServer(t, Config{Seed: 42, Seconds: 4})
	id, err := s.AttachNamed("cityflow", "plates")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := s.StepAll(); err != nil {
			t.Fatal(err)
		}
	}
	full, err := s.Results(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Hits) < 2 {
		t.Fatalf("workload produced %d hits; need at least 2 to split", len(full.Hits))
	}
	cut := full.Hits[len(full.Hits)/2].FrameIdx
	delta, err := s.ResultsSince(id, cut)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.Hits) == 0 || len(delta.Hits) >= len(full.Hits) {
		t.Fatalf("since=%d returned %d of %d hits", cut, len(delta.Hits), len(full.Hits))
	}
	for _, h := range delta.Hits {
		if h.FrameIdx < cut {
			t.Errorf("hit at frame %d leaked past since=%d", h.FrameIdx, cut)
		}
	}
	if delta.FramesProcessed != full.FramesProcessed {
		t.Errorf("since filtering must not change FramesProcessed: %d vs %d",
			delta.FramesProcessed, full.FramesProcessed)
	}
}

// TestHTTPBackfillAndSince drives the persistence surface over HTTP:
// backfill attach via POST body, delta reads via ?since=, and the store
// block in /streamz.
func TestHTTPBackfillAndSince(t *testing.T) {
	s := testServer(t, Config{Seed: 42, Seconds: 4, StoreDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) attachResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+"/queries", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /queries status %d", resp.StatusCode)
		}
		var ar attachResponse
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			t.Fatal(err)
		}
		return ar
	}

	post(`{"source":"cityflow","query":"redcar"}`)
	for i := 0; i < 12; i++ {
		if err := s.StepAll(); err != nil {
			t.Fatal(err)
		}
	}
	late := post(`{"source":"cityflow","query":"plates","backfill":true}`)
	if !late.Backfill {
		t.Error("attach response should echo backfill")
	}

	resp, err := http.Get(ts.URL + "/queries/" + strconv.Itoa(late.ID) + "/results?since=6")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr resultResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.FramesProcessed != 12 {
		t.Errorf("backfilled query processed %d frames over HTTP, want 12", rr.FramesProcessed)
	}
	for _, h := range rr.Result.Hits {
		if h.FrameIdx < 6 {
			t.Errorf("hit at frame %d leaked past since=6", h.FrameIdx)
		}
	}

	var st Stats
	resp2, err := http.Get(ts.URL + "/streamz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Store == nil || st.Store.Tiers.ScanRecords == 0 {
		t.Fatalf("streamz store block missing or empty: %+v", st.Store)
	}
}
