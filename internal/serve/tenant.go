package serve

// Multi-tenant QoS (DESIGN.md §11): named tenants from the typed
// config split each source's virtual-time admission budget in
// proportion to their shares, and every tenant-scoped HTTP request is
// charged against a per-tenant token bucket. The two enforcement
// points are independent failure domains:
//
//   - admission (virtual time): a tenant whose resident queries would
//     exceed its budget slice gets 429 ErrTenantBudget — the OTHER
//     tenants' slices are untouched, so one noisy tenant can never
//     starve its neighbours of attach capacity;
//   - rate limiting (wall time): a tenant hammering the API drains its
//     bucket and gets 429 ErrRateLimited with a Retry-After telling it
//     when the next token lands.
//
// With no tenants configured the daemon runs in single-tenant mode:
// one implicit tenant owns the whole budget, no rate limits, and
// admission rejections keep their historical 503 shape (ErrAdmission)
// — the pre-tenant behaviour, byte for byte.

import (
	"fmt"
	"math"
	"time"

	"vqpy/internal/config"
)

// DefaultTenantName is the tenant a request without an X-Tenant header
// (or "tenant" body field) is attributed to, when a tenant of that
// name is configured.
const DefaultTenantName = "default"

// tenantState is one configured tenant's runtime state: its config
// plus the token bucket. Guarded by Server.mu.
type tenantState struct {
	cfg    config.Tenant
	burst  float64 // bucket capacity (>= 1 when rate limiting is on)
	tokens float64
	last   time.Time // last refill instant
}

// refill tops the bucket up for the wall time elapsed since last.
func (t *tenantState) refill(now time.Time) {
	if t.cfg.RatePerSec <= 0 {
		return
	}
	dt := now.Sub(t.last).Seconds()
	if dt > 0 {
		t.tokens = math.Min(t.burst, t.tokens+dt*t.cfg.RatePerSec)
	}
	t.last = now
}

// take consumes one token. When the bucket is dry it reports the
// seconds until the next token lands (the Retry-After hint).
func (t *tenantState) take(now time.Time) (ok bool, retryAfter float64) {
	if t.cfg.RatePerSec <= 0 {
		return true, 0
	}
	t.refill(now)
	if t.tokens >= 1 {
		t.tokens--
		return true, 0
	}
	return false, (1 - t.tokens) / t.cfg.RatePerSec
}

// configureTenantsLocked (re)installs the tenant set. Buckets of
// tenants that survive a reload carry their fill level over (a reload
// must not hand every tenant a free burst); new tenants start full.
// Callers hold s.mu.
func (s *Server) configureTenantsLocked(list []config.Tenant) {
	old := s.tenants
	now := s.now()
	s.tenants = make(map[string]*tenantState, len(list))
	s.tenantOrder = s.tenantOrder[:0]
	s.totalShares = 0
	for _, t := range list {
		st := &tenantState{cfg: t, last: now}
		st.burst = float64(t.Burst)
		if t.RatePerSec > 0 && st.burst < 1 {
			st.burst = 1
		}
		st.tokens = st.burst
		if prev, ok := old[t.Name]; ok && prev.cfg.RatePerSec > 0 {
			prev.refill(now)
			st.tokens = math.Min(prev.tokens, st.burst)
		}
		s.tenants[t.Name] = st
		s.tenantOrder = append(s.tenantOrder, t.Name)
		s.totalShares += t.Share
	}
}

// multiTenantLocked reports whether explicit tenants are configured.
func (s *Server) multiTenantLocked() bool { return len(s.tenantOrder) > 0 }

// resolveTenantLocked maps a request's tenant name to its state. In
// single-tenant mode every name (including "") resolves to the
// implicit tenant (nil state). In multi-tenant mode "" falls back to
// the tenant named "default" when one is configured; unknown names are
// refused — a typoed tenant must not silently ride on someone else's
// budget. Callers hold s.mu.
func (s *Server) resolveTenantLocked(name string) (*tenantState, error) {
	if !s.multiTenantLocked() {
		return nil, nil
	}
	if name == "" {
		if st, ok := s.tenants[DefaultTenantName]; ok {
			return st, nil
		}
		return nil, fmt.Errorf("serve: tenant required (set X-Tenant; have %v)", s.tenantOrder)
	}
	st, ok := s.tenants[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown tenant %q (have %v)", name, s.tenantOrder)
	}
	return st, nil
}

// tenantSliceLocked is a tenant's slice of one source's per-frame
// admission budget: BudgetMS weighted by its share. 0 means
// unconstrained (no budget configured). Callers hold s.mu.
func (s *Server) tenantSliceLocked(st *tenantState) float64 {
	if st == nil || s.cfg.BudgetMS <= 0 || s.totalShares <= 0 {
		return s.cfg.BudgetMS
	}
	return s.cfg.BudgetMS * st.cfg.Share / s.totalShares
}

// estTenantLoadLocked sums the admission estimates of one tenant's
// queries resident on one source (per-source attaches plus fleet-wide
// lanes). Callers hold s.mu.
func (s *Server) estTenantLoadLocked(source, tenant string) (float64, int) {
	var load float64
	n := 0
	for _, q := range s.queries {
		if q.source == source && q.tenant == tenant {
			load += q.estMS
			n++
		}
	}
	if s.fleet != nil {
		for _, q := range s.fleet.queries {
			if q.tenant != tenant {
				continue
			}
			if est, ok := q.estMS[source]; ok {
				load += est
				n++
			}
		}
	}
	return load, n
}

// ErrRateLimited marks a request refused by a tenant's token bucket
// (HTTP 429 with a Retry-After header).
type ErrRateLimited struct {
	// Tenant is the limited tenant; RetryAfterSec the seconds until its
	// next token lands.
	Tenant        string
	RetryAfterSec float64
}

// Error implements error.
func (e *ErrRateLimited) Error() string {
	return fmt.Sprintf("serve: tenant %s rate limited (retry after %.2fs)", e.Tenant, e.RetryAfterSec)
}

// ErrTenantBudget marks an attach rejected because the tenant's slice
// of the source's admission budget is exhausted (HTTP 429 with a
// Retry-After header). Other tenants are unaffected by construction —
// their slices are disjoint.
type ErrTenantBudget struct {
	// Tenant and Source locate the rejection; EstMS is the query's
	// estimated per-frame cost, LoadMS the tenant's resident load,
	// SliceMS its budget slice and ResidentQueries its lane count.
	Tenant, Source  string
	EstMS, LoadMS   float64
	SliceMS         float64
	ResidentQueries int
	// RetryAfterSec is the Retry-After hint (budget frees when a
	// resident query detaches, so this is advisory).
	RetryAfterSec float64
}

// Error implements error.
func (e *ErrTenantBudget) Error() string {
	return fmt.Sprintf("serve: tenant %s over budget on %s: +%.2f est ms/frame onto %.2f resident (%d queries) exceeds slice %.2f",
		e.Tenant, e.Source, e.EstMS, e.LoadMS, e.ResidentQueries, e.SliceMS)
}

// TenantGate charges one tenant-scoped HTTP request: resolves the
// tenant, counts the request, and takes a rate-limit token. It is the
// single entry point the HTTP handlers call before touching the query
// surface; /streamz, /metrics and the health probes stay ungated so
// operators can always observe a saturated daemon.
func (s *Server) TenantGate(tenant string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.resolveTenantLocked(tenant)
	if err != nil {
		s.counters.Add("tenant_unknown", 1)
		return err
	}
	if st == nil { // single-tenant mode: count only
		s.counters.Add("http_requests", 1)
		return nil
	}
	s.counters.Add("tenant_requests:"+st.cfg.Name, 1)
	if ok, retry := st.take(s.now()); !ok {
		s.counters.Add("tenant_rate_limited:"+st.cfg.Name, 1)
		return &ErrRateLimited{Tenant: st.cfg.Name, RetryAfterSec: retry}
	}
	return nil
}

// OpsConfig is the hot-reloadable slice of the daemon configuration —
// what a SIGHUP reload may change on a running server. Everything else
// (sources, store, fleet shape, listen address) needs a restart.
type OpsConfig struct {
	// BudgetMS replaces the per-source admission budget.
	BudgetMS float64
	// Tenants replaces the tenant set. Surviving tenants keep their
	// bucket fill; queries attached under a removed tenant keep their
	// lanes but new requests under that name are refused.
	Tenants []config.Tenant
}

// ApplyOps applies a hot reload. Safe to call while tickers run and
// requests are in flight; admission and rate decisions after the call
// see the new budgets atomically.
func (s *Server) ApplyOps(ops OpsConfig) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.BudgetMS = ops.BudgetMS
	s.cfg.Tenants = ops.Tenants
	s.configureTenantsLocked(ops.Tenants)
	s.counters.Add("config_reloads", 1)
}

// TenantStat is one tenant's /streamz row.
type TenantStat struct {
	// Name and Share echo the configuration; SliceMS is the tenant's
	// per-source admission slice under the current budget.
	Name    string  `json:"name"`
	Share   float64 `json:"share"`
	SliceMS float64 `json:"budget_slice_ms_per_frame"`
	// RatePerSec / Burst / Tokens describe the rate limiter.
	RatePerSec float64 `json:"rate_per_sec"`
	Burst      int     `json:"burst"`
	Tokens     float64 `json:"tokens"`
	// ResidentQueries counts the tenant's lanes across all sources.
	ResidentQueries int `json:"resident_queries"`
	// Requests / RateLimited / AdmissionRejected are the tenant's
	// request counters.
	Requests          int64 `json:"requests"`
	RateLimited       int64 `json:"rate_limited"`
	AdmissionRejected int64 `json:"admission_rejected"`
}

// tenantStatsLocked assembles the /streamz tenant rows in configured
// order. Callers hold s.mu.
func (s *Server) tenantStatsLocked() []TenantStat {
	if !s.multiTenantLocked() {
		return nil
	}
	now := s.now()
	out := make([]TenantStat, 0, len(s.tenantOrder))
	for _, name := range s.tenantOrder {
		st := s.tenants[name]
		st.refill(now)
		resident := 0
		for _, src := range s.order {
			_, n := s.estTenantLoadLocked(src, name)
			resident += n
		}
		out = append(out, TenantStat{
			Name: name, Share: st.cfg.Share, SliceMS: s.tenantSliceLocked(st),
			RatePerSec: st.cfg.RatePerSec, Burst: st.cfg.Burst, Tokens: st.tokens,
			ResidentQueries:   resident,
			Requests:          s.counters.Get("tenant_requests:" + name),
			RateLimited:       s.counters.Get("tenant_rate_limited:" + name),
			AdmissionRejected: s.counters.Get("tenant_admission_rejected:" + name),
		})
	}
	return out
}
