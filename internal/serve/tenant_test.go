package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"vqpy/internal/config"
)

// tenantTestClock installs a manual clock on the server so token-
// bucket tests do not sleep.
func tenantTestClock(s *Server) (advance func(d time.Duration)) {
	base := time.Unix(0, 0)
	s.mu.Lock()
	s.now = func() time.Time { return base }
	s.mu.Unlock()
	return func(d time.Duration) {
		s.mu.Lock()
		base = base.Add(d)
		s.mu.Unlock()
	}
}

// attachUntilBudget attaches queryName for the tenant until its budget
// slice rejects, returning how many attaches were admitted.
func attachUntilBudget(t *testing.T, s *Server, tenant, queryName string) int {
	t.Helper()
	for n := 0; ; n++ {
		if n > 100 {
			t.Fatalf("tenant %s: no budget rejection after %d attaches", tenant, n)
		}
		_, err := s.AttachNamedAs(tenant, "cityflow", queryName, false)
		if err == nil {
			continue
		}
		var tb *ErrTenantBudget
		if !errors.As(err, &tb) {
			t.Fatalf("tenant %s: attach error = %v, want ErrTenantBudget", tenant, err)
		}
		if tb.Tenant != tenant {
			t.Fatalf("rejection names tenant %q, want %q", tb.Tenant, tenant)
		}
		return n
	}
}

// TestTenantAdmissionFairness: with shares 3:1 over one budget, the
// heavy tenant admits ~3× the queries of the light one, and the light
// tenant exhausting its slice leaves the heavy tenant's headroom
// untouched — rejections are per-tenant, not global.
func TestTenantAdmissionFairness(t *testing.T) {
	// redcar estimates ~28.7 virtual ms/frame on the cityflow clip:
	// budget 160 gives free (share 1) a 40ms slice — one redcar — and
	// gold (share 3) a 120ms slice — four.
	s := testServer(t, Config{
		BudgetMS: 160,
		Tenants: []config.Tenant{
			{Name: "gold", Share: 3},
			{Name: "free", Share: 1},
		},
	})

	// Exhaust the light tenant FIRST: its 429s must not eat into gold.
	freeN := attachUntilBudget(t, s, "free", "redcar")
	goldN := attachUntilBudget(t, s, "gold", "redcar")
	if freeN < 1 {
		t.Fatalf("free admitted %d queries, want >= 1", freeN)
	}
	if goldN < 2*freeN {
		t.Errorf("gold admitted %d vs free %d; want at least 2x under 3:1 shares", goldN, freeN)
	}

	// The rejection carries the tenant's slice, not the whole budget.
	_, err := s.AttachNamedAs("free", "cityflow", "redcar", false)
	var tb *ErrTenantBudget
	if !errors.As(err, &tb) {
		t.Fatalf("err = %v, want ErrTenantBudget", err)
	}
	if want := 160.0 * 1 / 4; tb.SliceMS != want {
		t.Errorf("free slice = %g, want %g", tb.SliceMS, want)
	}

	st := s.Streamz()
	if len(st.Tenants) != 2 {
		t.Fatalf("streamz tenants = %+v", st.Tenants)
	}
	for _, ts := range st.Tenants {
		wantResident := map[string]int{"gold": goldN, "free": freeN}[ts.Name]
		if ts.ResidentQueries != wantResident {
			t.Errorf("tenant %s resident = %d, want %d", ts.Name, ts.ResidentQueries, wantResident)
		}
		if ts.AdmissionRejected < 1 {
			t.Errorf("tenant %s admission_rejected = %d, want >= 1", ts.Name, ts.AdmissionRejected)
		}
	}
}

// TestTenantAdmissionConcurrent hammers per-tenant attach from many
// goroutines (run under -race in CI): totals per tenant must respect
// each slice exactly as in the serial case.
func TestTenantAdmissionConcurrent(t *testing.T) {
	s := testServer(t, Config{
		BudgetMS: 160,
		Tenants: []config.Tenant{
			{Name: "gold", Share: 3},
			{Name: "free", Share: 1},
		},
	})
	serialFree := attachUntilBudget(t, testServer(t, Config{
		BudgetMS: 160,
		Tenants:  []config.Tenant{{Name: "gold", Share: 3}, {Name: "free", Share: 1}},
	}), "free", "redcar")

	var wg sync.WaitGroup
	admitted := make(map[string]*int)
	var mu sync.Mutex
	for _, tenant := range []string{"gold", "free"} {
		n := 0
		admitted[tenant] = &n
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					if _, err := s.AttachNamedAs(tenant, "cityflow", "redcar", false); err == nil {
						mu.Lock()
						*admitted[tenant]++
						mu.Unlock()
					}
				}
			}(tenant)
		}
	}
	wg.Wait()
	if *admitted["free"] != serialFree {
		t.Errorf("concurrent free admissions = %d, want the serial count %d", *admitted["free"], serialFree)
	}
	if *admitted["gold"] < 2**admitted["free"] {
		t.Errorf("gold admitted %d vs free %d under concurrency", *admitted["gold"], *admitted["free"])
	}
}

// TestTenantRateLimit: the token bucket rejects the burst-exceeding
// request with a usable retry hint and refills with wall time; the
// other tenant is unaffected.
func TestTenantRateLimit(t *testing.T) {
	s := testServer(t, Config{
		Tenants: []config.Tenant{
			{Name: "gold", Share: 3},
			{Name: "free", Share: 1, RatePerSec: 1, Burst: 2},
		},
	})
	advance := tenantTestClock(s)

	for i := 0; i < 2; i++ {
		if err := s.TenantGate("free"); err != nil {
			t.Fatalf("burst request %d: %v", i, err)
		}
	}
	err := s.TenantGate("free")
	var rl *ErrRateLimited
	if !errors.As(err, &rl) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	if rl.Tenant != "free" || rl.RetryAfterSec <= 0 || rl.RetryAfterSec > 1 {
		t.Errorf("rate limit = %+v, want free with 0 < retry <= 1s", rl)
	}
	// Gold has no rate limit: never throttled.
	for i := 0; i < 50; i++ {
		if err := s.TenantGate("gold"); err != nil {
			t.Fatalf("gold throttled: %v", err)
		}
	}
	// One second refills one token.
	advance(time.Second)
	if err := s.TenantGate("free"); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	if err := s.TenantGate("free"); err == nil {
		t.Fatal("second request after a 1-token refill should be limited")
	}
}

// TestTenantResolution: unknown tenants are refused, the empty name
// falls back to the "default" tenant when configured, and single-
// tenant mode ignores tenant names entirely.
func TestTenantResolution(t *testing.T) {
	s := testServer(t, Config{
		Tenants: []config.Tenant{{Name: "default", Share: 1}, {Name: "gold", Share: 1}},
	})
	if err := s.TenantGate(""); err != nil {
		t.Errorf("empty tenant with a configured default: %v", err)
	}
	if err := s.TenantGate("nosuch"); err == nil {
		t.Error("unknown tenant admitted")
	}

	single := testServer(t, Config{})
	if err := single.TenantGate("anything"); err != nil {
		t.Errorf("single-tenant mode rejected a tenant name: %v", err)
	}

	noDefault := testServer(t, Config{Tenants: []config.Tenant{{Name: "gold", Share: 1}}})
	if err := noDefault.TenantGate(""); err == nil {
		t.Error("empty tenant without a default should be refused")
	}
}

// TestApplyOpsReload: a hot reload swaps budget and tenant set under
// live traffic; surviving tenants keep their bucket level (no free
// burst), new budgets govern the next admission decision.
func TestApplyOpsReload(t *testing.T) {
	s := testServer(t, Config{
		BudgetMS: 80,
		Tenants: []config.Tenant{
			{Name: "gold", Share: 3, RatePerSec: 1, Burst: 2},
			{Name: "free", Share: 1},
		},
	})
	tenantTestClock(s)

	// Drain gold's bucket, then reload with the same gold config.
	for i := 0; i < 2; i++ {
		if err := s.TenantGate("gold"); err != nil {
			t.Fatal(err)
		}
	}
	s.ApplyOps(OpsConfig{BudgetMS: 40, Tenants: []config.Tenant{
		{Name: "gold", Share: 1, RatePerSec: 1, Burst: 2},
	}})
	if err := s.TenantGate("gold"); err == nil {
		t.Error("reload refilled gold's bucket — surviving tenants must keep their level")
	}
	// free is gone.
	if err := s.TenantGate("free"); err == nil {
		t.Error("removed tenant still resolves")
	}
	// The new budget governs admission: gold now owns all of 40ms.
	_, err := s.AttachNamedAs("gold", "cityflow", "people", false)
	var tb *ErrTenantBudget
	if errors.As(err, &tb) && tb.SliceMS != 40 {
		t.Errorf("post-reload slice = %g, want 40", tb.SliceMS)
	}
	if s.Streamz().Counters["config_reloads"] != 1 {
		t.Error("config_reloads counter not incremented")
	}
}

// TestApplyOpsRace runs reloads against concurrent attaches and
// streamz reads (the -race suite for the SIGHUP path).
func TestApplyOpsRace(t *testing.T) {
	s := testServer(t, Config{
		BudgetMS: 80,
		Tenants:  []config.Tenant{{Name: "gold", Share: 3}, {Name: "free", Share: 1}},
	})
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s.ApplyOps(OpsConfig{BudgetMS: float64(40 + i), Tenants: []config.Tenant{
				{Name: "gold", Share: 3}, {Name: "free", Share: 1, RatePerSec: 100, Burst: 5},
			}})
		}
		close(done)
	}()
	for _, tenant := range []string{"gold", "free"} {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				id, err := s.AttachNamedAs(tenant, "cityflow", "redcar", false)
				if err == nil {
					_, _ = s.Detach(id)
				}
				_ = s.TenantGate(tenant)
			}
		}(tenant)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = s.Streamz()
			_ = s.MetricsFamilies()
		}
	}()
	wg.Wait()
}

// TestHTTPTenant429 drives the tenant surface over HTTP: rate-limited
// and over-budget tenants get 429 with a Retry-After header, unknown
// tenants 400, and the other tenant keeps getting 200s throughout.
func TestHTTPTenant429(t *testing.T) {
	s := testServer(t, Config{
		BudgetMS: 80,
		Tenants: []config.Tenant{
			{Name: "gold", Share: 3, RatePerSec: 1000, Burst: 1000},
			{Name: "free", Share: 1, RatePerSec: 1, Burst: 2},
		},
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	do := func(tenant, method, path, body string) *http.Response {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, srv.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Attach one gold query; read results as gold well past free's rate.
	resp := do("gold", "POST", "/queries", `{"source":"cityflow","query":"redcar"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gold attach = %d", resp.StatusCode)
	}
	var att attachResponse
	if err := json.NewDecoder(resp.Body).Decode(&att); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if att.Tenant != "gold" {
		t.Errorf("attach response tenant = %q, want gold", att.Tenant)
	}

	// free's burst is 2: the third request must be 429 with Retry-After,
	// while gold keeps reading 200s.
	sawLimited := false
	for i := 0; i < 4; i++ {
		r := do("free", "GET", "/queries/0/results", "")
		if r.StatusCode == http.StatusTooManyRequests {
			sawLimited = true
			if ra := r.Header.Get("Retry-After"); ra == "" {
				t.Error("429 without Retry-After header")
			}
		}
		r.Body.Close()
		g := do("gold", "GET", "/queries/0/results", "")
		if g.StatusCode != http.StatusOK {
			t.Errorf("gold read %d = %d while free is limited", i, g.StatusCode)
		}
		g.Body.Close()
	}
	if !sawLimited {
		t.Error("free never rate-limited over 4 requests at burst 2")
	}

	// Unknown tenant: 400.
	r := do("nosuch", "GET", "/queries/0/results", "")
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown tenant = %d, want 400", r.StatusCode)
	}
	r.Body.Close()

	// Over-budget attach (tenant via body field, no header): 429 + hint.
	for i := 0; i < 20; i++ {
		r := do("", "POST", "/queries", `{"source":"cityflow","query":"redcar","tenant":"gold"}`)
		if r.StatusCode == http.StatusTooManyRequests {
			if ra := r.Header.Get("Retry-After"); ra == "" {
				t.Error("budget 429 without Retry-After header")
			}
			r.Body.Close()
			return
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("gold attach %d = %d", i, r.StatusCode)
		}
		r.Body.Close()
	}
	t.Error("gold never hit its budget slice over 20 attaches")
}

// promSample matches one non-comment line of the text exposition.
var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)

// TestHTTPMetrics: GET /metrics serves the Prometheus text format with
// the expected families and stays ungated in multi-tenant mode.
func TestHTTPMetrics(t *testing.T) {
	s := testServer(t, Config{
		BudgetMS: 80,
		Tenants:  []config.Tenant{{Name: "gold", Share: 3}, {Name: "free", Share: 1}},
	})
	if _, err := s.AttachNamedAs("gold", "cityflow", "redcar", false); err != nil {
		t.Fatal(err)
	}
	if err := s.StepAll(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics") // no X-Tenant: must not 4xx
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, frag := range []string{
		"# TYPE vqserve_up gauge",
		"vqserve_up 1",
		`vqserve_tenant_share{tenant="gold"} 3`,
		`vqserve_tenant_budget_ms{tenant="gold"} 60`,
		`vqserve_tenant_resident_queries{tenant="gold"} 1`,
		`vqserve_source_lanes{source="cityflow"} 1`,
		`vqserve_source_budget_ms{source="cityflow"} 80`,
		"# TYPE vqserve_queries_attached_total counter",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("/metrics missing %q", frag)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("unparseable sample line %q", line)
		}
	}
}

// TestSingleTenantBackCompat pins the pre-tenant surface: without
// configured tenants, admission rejections stay ErrAdmission (503 over
// HTTP, covered by TestHTTPAdmission503) and /metrics still serves.
func TestSingleTenantBackCompat(t *testing.T) {
	s := testServer(t, Config{BudgetMS: 40})
	if _, err := s.AttachNamedAs("ignored-name", "cityflow", "redcar", false); err != nil {
		t.Fatalf("single-tenant attach with a tenant name: %v", err)
	}
	_, err := s.AttachNamedAs("", "cityflow", "people", false)
	var adm *ErrAdmission
	if !errors.As(err, &adm) {
		t.Fatalf("err = %v, want ErrAdmission (503 shape)", err)
	}
	st := s.Streamz()
	if st.Tenants != nil {
		t.Errorf("single-tenant streamz reports tenants: %+v", st.Tenants)
	}
	fams := s.MetricsFamilies()
	if len(fams) == 0 {
		t.Fatal("no metric families in single-tenant mode")
	}
	for _, f := range fams {
		if strings.HasPrefix(f.Name, "vqserve_tenant_") && len(f.Samples) > 0 {
			t.Errorf("single-tenant mode exports tenant gauges: %s", f.Name)
		}
	}
}
