package serve

// Text-served queries (DESIGN.md §13): POST /queries with "mode":"text"
// answers a constrained natural-language query synchronously over the
// source's fed frames. The daemon compiles the sentence against the
// library catalog, runs the closed-vocabulary cascade, and consults the
// simulated open-vocabulary verifier only on the frames the cascade
// could not rule out — "eager" opts into the on-every-frame baseline,
// which yields the same verdicts at strictly higher cost.

import (
	"fmt"

	"vqpy"
)

// TextRequest is one synchronous language query.
type TextRequest struct {
	// Source names the stream whose fed frames answer the query.
	Source string
	// Text is the query sentence, e.g. "red car stopped for 2 seconds".
	Text string
	// Eager asks the verifier on every frame instead of lazily.
	Eager bool
}

// TextSummary is the wire-level text-query reply.
type TextSummary struct {
	Source string `json:"source"`
	// Text echoes the request sentence; Canonical is its normalized
	// form, also the compiled query's name modulo the Text(...) wrapper.
	Text      string `json:"text"`
	Canonical string `json:"canonical"`
	// Concepts is the open-vocabulary remainder the verifier decided.
	Concepts []string `json:"concepts,omitempty"`
	// Frames is the fed-frame watermark the query spanned.
	Frames int `json:"frames"`
	// UndecidedFrames counts the frames the cheap cascade matched — the
	// only frames a lazy run pays the verifier for. VLMCalls is the
	// actual verifier invocation count (== Frames when eager) and
	// VLMFrameRatio its share of the processed frames.
	UndecidedFrames int     `json:"undecided_frames"`
	VLMCalls        int     `json:"vlm_calls"`
	VLMFrameRatio   float64 `json:"vlm_frame_ratio"`
	Eager           bool    `json:"eager,omitempty"`
	MatchedFrames   int     `json:"matched_frames"`
	Events          int     `json:"events"`
	Hits            int     `json:"hits"`
	VirtualMS       float64 `json:"virtual_ms"`
}

// TextQuery answers one language query over a source's fed frames.
// Refused in fleet mode and while draining; unlike search and fidelity
// it needs neither -store nor -index — the cascade scans live and the
// verifier is a model call. Synchronous and lock-holding like
// FidelityQuery: frame feeding pauses for its duration.
func (s *Server) TextQuery(req TextRequest) (*TextSummary, error) {
	tq, err := vqpy.CompileText(req.Text)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if s.fleet != nil {
		return nil, fmt.Errorf("serve: text queries are per-source; fleet mode does not support them")
	}
	src, ok := s.sources[req.Source]
	if !ok {
		return nil, fmt.Errorf("serve: unknown source %q: %w", req.Source, ErrNotFound)
	}
	fed := src.fed
	if n := len(src.video.Frames); fed > n {
		fed = n // loop mode wraps; the clip is keyed by clip frame index
	}
	if fed == 0 {
		return nil, fmt.Errorf("serve: source %q has no fed frames to answer yet", req.Source)
	}

	// Clip shares the underlying frames, so frame indexes — and with
	// them the verifier's deterministic answers — match the live feed.
	clip := src.video.Clip(0, fed)
	opts := []vqpy.Option(nil)
	if req.Eager {
		opts = append(opts, vqpy.WithEagerVerify())
	}
	res, err := src.session.Text(req.Text, clip, opts...)
	if err != nil {
		return nil, err
	}

	s.counters.Add("text_queries", 1)
	s.counters.Add("text_frames", int64(res.Frames))
	s.counters.Add("text_undecided_frames", int64(res.CascadeMatched))
	s.counters.Add("text_vlm_calls", int64(res.VLMCalls))
	ratio := 0.0
	if res.Frames > 0 {
		ratio = float64(res.VLMCalls) / float64(res.Frames)
	}
	return &TextSummary{
		Source: req.Source, Text: req.Text, Canonical: tq.Canonical,
		Concepts:        tq.Concepts,
		Frames:          res.Frames,
		UndecidedFrames: res.CascadeMatched, VLMCalls: res.VLMCalls,
		VLMFrameRatio: ratio, Eager: req.Eager,
		MatchedFrames: res.MatchedCount(), Events: len(res.Events),
		Hits: len(res.Hits), VirtualMS: res.VirtualMS,
	}, nil
}
