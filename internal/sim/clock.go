package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Clock is a virtual-time ledger. Simulated components charge virtual
// milliseconds for each piece of work (a model inference, an embedding
// pass); experiments report totals from the ledger so that results are
// deterministic and comparable to the paper's measured wall-clock shape
// regardless of the machine running the reproduction.
//
// Besides the running total, the ledger keeps per-account subtotals so
// benchmarks can break time down by operator or model, mirroring the
// paper's per-stage analysis (e.g., Figure 13(b)).
//
// Clock is safe for concurrent use.
type Clock struct {
	mu       sync.Mutex
	totalMS  float64
	accounts map[string]float64
	counts   map[string]int64
	history  []FrameCost
	curFrame int
	curCost  float64
}

// FrameCost records the virtual cost charged while a given frame was
// current; used to reproduce per-frame time series (Figure 13(b)).
type FrameCost struct {
	Frame int
	MS    float64
}

// NewClock returns an empty ledger.
func NewClock() *Clock {
	return &Clock{
		accounts: make(map[string]float64),
		counts:   make(map[string]int64),
		curFrame: -1,
	}
}

// Charge adds ms virtual milliseconds against the named account. Each
// call also counts one invocation against the account, so the ledger can
// answer "how many times did this model run" as well as "for how long"
// (the shared-scan experiments compare invocation counts across
// execution strategies).
func (c *Clock) Charge(account string, ms float64) {
	if ms < 0 {
		ms = 0
	}
	c.mu.Lock()
	c.totalMS += ms
	c.accounts[account] += ms
	c.counts[account]++
	c.curCost += ms
	c.mu.Unlock()
}

// ChargeShadow records ms against an account without affecting the
// total or the per-frame series. It provides attribution-only views
// that re-slice already-charged time (e.g. per-device placement
// accounting), which must not double-count against TotalMS.
func (c *Clock) ChargeShadow(account string, ms float64) {
	if ms <= 0 {
		return
	}
	c.mu.Lock()
	c.accounts[account] += ms
	c.mu.Unlock()
}

// StartFrame marks the beginning of work on a frame. Charges made until
// the next StartFrame (or FlushFrames) accrue to this frame's FrameCost.
func (c *Clock) StartFrame(frame int) {
	c.mu.Lock()
	c.flushLocked()
	c.curFrame = frame
	c.mu.Unlock()
}

// FlushFrames finalizes the in-progress frame record, if any.
func (c *Clock) FlushFrames() {
	c.mu.Lock()
	c.flushLocked()
	c.curFrame = -1
	c.mu.Unlock()
}

func (c *Clock) flushLocked() {
	if c.curFrame >= 0 {
		c.history = append(c.history, FrameCost{Frame: c.curFrame, MS: c.curCost})
	}
	c.curCost = 0
}

// TotalMS returns the total charged virtual milliseconds.
func (c *Clock) TotalMS() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalMS
}

// Account returns the subtotal for one account.
func (c *Clock) Account(name string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.accounts[name]
}

// Accounts returns a copy of all account subtotals.
func (c *Clock) Accounts() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.accounts))
	for k, v := range c.accounts {
		out[k] = v
	}
	return out
}

// Invocations returns the number of charges booked against one account
// (one per model inference, tracker update, etc.).
func (c *Clock) Invocations(account string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[account]
}

// InvocationTotals returns a copy of all per-account invocation counts.
func (c *Clock) InvocationTotals() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

// PerFrame returns the recorded per-frame cost series, flushing any
// in-progress frame first.
func (c *Clock) PerFrame() []FrameCost {
	c.FlushFrames()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]FrameCost, len(c.history))
	copy(out, c.history)
	return out
}

// Merge folds another ledger's totals, per-account subtotals and
// per-frame history into this one. Parallel query workers charge
// independent forked clocks; the scheduler merges them back so the
// session ledger reflects all work regardless of worker count. Merging
// is additive and therefore order-independent for totals and accounts.
func (c *Clock) Merge(o *Clock) {
	if o == nil || o == c {
		return
	}
	o.FlushFrames()
	o.mu.Lock()
	total := o.totalMS
	accounts := make(map[string]float64, len(o.accounts))
	for k, v := range o.accounts {
		accounts[k] = v
	}
	counts := make(map[string]int64, len(o.counts))
	for k, v := range o.counts {
		counts[k] = v
	}
	history := make([]FrameCost, len(o.history))
	copy(history, o.history)
	o.mu.Unlock()

	c.mu.Lock()
	c.totalMS += total
	for k, v := range accounts {
		c.accounts[k] += v
	}
	for k, v := range counts {
		c.counts[k] += v
	}
	c.history = append(c.history, history...)
	c.mu.Unlock()
}

// Reset clears the ledger.
func (c *Clock) Reset() {
	c.mu.Lock()
	c.totalMS = 0
	c.accounts = make(map[string]float64)
	c.counts = make(map[string]int64)
	c.history = nil
	c.curFrame = -1
	c.curCost = 0
	c.mu.Unlock()
}

// String renders the ledger as a small report, accounts sorted by cost.
func (c *Clock) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	type kv struct {
		k string
		v float64
	}
	rows := make([]kv, 0, len(c.accounts))
	for k, v := range c.accounts {
		rows = append(rows, kv{k, v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].v != rows[j].v {
			return rows[i].v > rows[j].v
		}
		return rows[i].k < rows[j].k
	})
	var b strings.Builder
	fmt.Fprintf(&b, "virtual time: %.2f ms\n", c.totalMS)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-28s %12.2f ms\n", r.k, r.v)
	}
	return b.String()
}

// Burn performs real CPU work roughly proportional to ms so that Go
// benchmarks measuring wall-clock time preserve the relative shape of the
// virtual costs. The work is a short integer-mixing loop whose iteration
// count scales linearly with ms; the result is returned to defeat dead
// code elimination.
//
// The scale factor is deliberately small: one virtual millisecond maps to
// ~2µs of real work, keeping full experiment sweeps fast while preserving
// ratios.
const burnIterationsPerMS = 400

// Burn consumes CPU proportional to ms virtual milliseconds.
func Burn(ms float64) uint64 {
	n := int(ms * burnIterationsPerMS)
	var acc uint64 = 0x9E3779B97F4A7C15
	for i := 0; i < n; i++ {
		acc ^= acc << 13
		acc ^= acc >> 7
		acc ^= acc << 17
		acc += uint64(i)
	}
	return acc
}
