package sim

import (
	"strings"
	"sync"
	"testing"
)

func TestClockCharge(t *testing.T) {
	c := NewClock()
	c.Charge("detector", 10)
	c.Charge("detector", 5)
	c.Charge("tracker", 2)
	if got := c.TotalMS(); got != 17 {
		t.Errorf("TotalMS = %v", got)
	}
	if got := c.Account("detector"); got != 15 {
		t.Errorf("detector account = %v", got)
	}
	if got := c.Account("missing"); got != 0 {
		t.Errorf("missing account = %v", got)
	}
	accs := c.Accounts()
	if len(accs) != 2 || accs["tracker"] != 2 {
		t.Errorf("Accounts = %v", accs)
	}
}

func TestClockNegativeClamped(t *testing.T) {
	c := NewClock()
	c.Charge("x", -5)
	if c.TotalMS() != 0 {
		t.Errorf("negative charge leaked: %v", c.TotalMS())
	}
}

func TestClockPerFrame(t *testing.T) {
	c := NewClock()
	c.StartFrame(0)
	c.Charge("m", 3)
	c.StartFrame(1)
	c.Charge("m", 7)
	series := c.PerFrame()
	if len(series) != 2 {
		t.Fatalf("PerFrame len = %d", len(series))
	}
	if series[0] != (FrameCost{0, 3}) || series[1] != (FrameCost{1, 7}) {
		t.Errorf("PerFrame = %v", series)
	}
	// Charges outside any frame do not create records.
	c.Charge("m", 1)
	if got := len(c.PerFrame()); got != 2 {
		t.Errorf("frameless charge created record; len = %d", got)
	}
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.StartFrame(0)
	c.Charge("m", 3)
	c.Reset()
	if c.TotalMS() != 0 || len(c.Accounts()) != 0 || len(c.PerFrame()) != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestClockString(t *testing.T) {
	c := NewClock()
	c.Charge("b-model", 1)
	c.Charge("a-model", 1)
	s := c.String()
	if !strings.Contains(s, "a-model") || !strings.Contains(s, "virtual time") {
		t.Errorf("String = %q", s)
	}
	// Equal costs break ties by name: a-model should precede b-model.
	if strings.Index(s, "a-model") > strings.Index(s, "b-model") {
		t.Errorf("tie-break ordering wrong: %q", s)
	}
}

func TestClockConcurrency(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Charge("p", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.TotalMS(); got != 8000 {
		t.Errorf("concurrent TotalMS = %v", got)
	}
}

func TestBurnScales(t *testing.T) {
	if Burn(0) == 0 {
		t.Error("Burn returned 0 accumulator")
	}
	// Just verify it runs for larger values without panicking and returns
	// a value (anti-DCE contract).
	if Burn(10) == Burn(0) {
		// Not an error: values may theoretically coincide, but the
		// accumulator depends on iteration count so they should differ.
		t.Log("Burn(10) == Burn(0); suspicious but not fatal")
	}
}

func TestChargeShadow(t *testing.T) {
	c := NewClock()
	c.Charge("model", 10)
	c.StartFrame(0)
	c.ChargeShadow("device:edge", 7)
	if c.TotalMS() != 10 {
		t.Errorf("shadow charge leaked into total: %v", c.TotalMS())
	}
	if c.Account("device:edge") != 7 {
		t.Errorf("shadow account = %v", c.Account("device:edge"))
	}
	// Shadow charges must not appear in per-frame series either.
	series := c.PerFrame()
	for _, fc := range series {
		if fc.MS != 0 {
			t.Errorf("shadow charge leaked into frame series: %+v", fc)
		}
	}
	c.ChargeShadow("x", -1) // non-positive is a no-op
	if c.Account("x") != 0 {
		t.Error("negative shadow charge recorded")
	}
}
