// Package sim provides the determinism substrate shared by every simulated
// component: a small, fast, seedable random number generator; sampling
// helpers; and a virtual-time ledger that stands in for the GPU wall clock
// of the paper's testbed.
//
// Every stochastic decision in the repository (scenario generation, model
// noise, MLLM answers) draws from a sim.RNG so that experiments are exactly
// reproducible given a seed, while the ledger makes reported latencies
// machine-independent.
package sim

import "math"

// RNG is a splitmix64-based pseudo random number generator. It is cheap,
// has a single word of state, and is deterministic across platforms. It is
// not safe for concurrent use; derive per-goroutine generators with Split.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Any seed, including zero,
// is valid.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next value in the splitmix64 sequence.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Split derives an independent generator whose stream does not overlap the
// parent's for practical purposes. Use it to hand each subsystem its own
// stream while keeping a single experiment seed.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xA5A5A5A5A5A5A5A5)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, via the Box-Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	// Guard against log(0).
	u1 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Pick returns a uniformly chosen element of choices. It panics on an
// empty slice.
func Pick[T any](r *RNG, choices []T) T {
	return choices[r.Intn(len(choices))]
}

// Weighted returns an index into weights chosen with probability
// proportional to the weight. Non-positive weights are treated as zero;
// if all weights are zero the first index is returned.
func (r *RNG) Weighted(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// Shuffle permutes s in place using Fisher-Yates.
func Shuffle[T any](r *RNG, s []T) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}
