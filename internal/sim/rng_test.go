package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d identical values", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntn(t *testing.T) {
	r := NewRNG(2)
	seen := make([]bool, 10)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Errorf("Intn never produced %d", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestBool(t *testing.T) {
	r := NewRNG(3)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	n := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.3) {
			n++
		}
	}
	if n < 2700 || n > 3300 {
		t.Errorf("Bool(0.3) frequency = %d/10000", n)
	}
}

func TestNorm(t *testing.T) {
	r := NewRNG(4)
	sum, sumSq := 0.0, 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("Norm mean = %v", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.1 {
		t.Errorf("Norm stddev = %v", math.Sqrt(variance))
	}
}

func TestExp(t *testing.T) {
	r := NewRNG(5)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Exp(4)
		if v < 0 {
			t.Fatalf("Exp negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-4) > 0.2 {
		t.Errorf("Exp mean = %v", mean)
	}
}

func TestWeighted(t *testing.T) {
	r := NewRNG(6)
	counts := make([]int, 3)
	w := []float64{1, 0, 3}
	for i := 0; i < 10000; i++ {
		counts[r.Weighted(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
	if got := r.Weighted([]float64{0, 0}); got != 0 {
		t.Errorf("all-zero Weighted = %d", got)
	}
}

func TestPickAndShuffle(t *testing.T) {
	r := NewRNG(7)
	s := []string{"a", "b", "c"}
	for i := 0; i < 50; i++ {
		v := Pick(r, s)
		if v != "a" && v != "b" && v != "c" {
			t.Fatalf("Pick returned %q", v)
		}
	}
	orig := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	sh := append([]int(nil), orig...)
	Shuffle(r, sh)
	sum := 0
	for _, v := range sh {
		sum += v
	}
	if sum != 45 {
		t.Errorf("Shuffle lost elements: %v", sh)
	}
}

func TestRangeProperty(t *testing.T) {
	r := NewRNG(8)
	f := func(a, b float64) bool {
		lo := math.Mod(math.Abs(a), 100)
		hi := lo + math.Mod(math.Abs(b), 100) + 0.001
		v := r.Range(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(9)
	child := parent.Split()
	// Child stream should not equal the parent's continued stream.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split stream mirrors parent (%d collisions)", same)
	}
}
