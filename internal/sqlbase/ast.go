package sqlbase

import (
	"fmt"
	"strings"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// LoadVideo binds a registered video to a frame table.
type LoadVideo struct {
	Path  string
	Table string
}

func (*LoadVideo) stmt() {}

// CreateFunction binds a registered UDF name (the IMPL path is recorded
// but unused, matching how the benchmarks port the paper's scripts).
type CreateFunction struct {
	Name string
	Impl string
}

func (*CreateFunction) stmt() {}

// CreateTableAs materializes a SELECT result.
type CreateTableAs struct {
	Table  string
	Select *Select
}

func (*CreateTableAs) stmt() {}

// Drop removes a table or function; IfExists suppresses missing-object
// errors.
type Drop struct {
	Function bool
	IfExists bool
	Name     string
}

func (*Drop) stmt() {}

// Select is the query core.
type Select struct {
	Items []SelectItem
	From  TableRef

	// Lateral is the JOIN LATERAL UNNEST(...) AS alias(cols) clause.
	Lateral *LateralClause

	// Join is an optional inner join.
	Join *JoinClause

	Where Expr
}

func (*Select) stmt() {}

// SelectItem is one output column: an expression with an optional alias,
// or * (Star).
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// LateralClause unnests a table-valued function per input row.
type LateralClause struct {
	Call  *CallExpr
	Alias string
	Cols  []string
}

// JoinClause is an inner join with an ON expression.
type JoinClause struct {
	Table TableRef
	On    Expr
}

// Expr is an expression node.
type Expr interface{ expr() }

// ColRef references a column, optionally qualified.
type ColRef struct {
	Table  string // empty if unqualified
	Column string
}

func (*ColRef) expr() {}

// Lit is a literal value (float64 or string).
type Lit struct{ Value any }

func (*Lit) expr() {}

// CallExpr is a function invocation.
type CallExpr struct {
	Name string
	Args []Expr
}

func (*CallExpr) expr() {}

// BinExpr is a binary operation: comparison, AND/OR, or arithmetic.
type BinExpr struct {
	Op          string // "=", "!=", ">", ">=", "<", "<=", "and", "or", "+", "-"
	Left, Right Expr
}

func (*BinExpr) expr() {}

// String renders expressions for diagnostics.
func exprString(e Expr) string {
	switch e := e.(type) {
	case *ColRef:
		if e.Table != "" {
			return e.Table + "." + e.Column
		}
		return e.Column
	case *Lit:
		if s, ok := e.Value.(string); ok {
			return "'" + s + "'"
		}
		return fmt.Sprint(e.Value)
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = exprString(a)
		}
		return e.Name + "(" + strings.Join(args, ", ") + ")"
	case *BinExpr:
		return "(" + exprString(e.Left) + " " + e.Op + " " + exprString(e.Right) + ")"
	}
	return "?"
}
