package sqlbase

// This file compiles SQL SELECTs over video tables into the unified
// operator IR of internal/plan, so the SQL frontend executes through the
// same planner and shared-scan engine as the object-oriented frontend —
// there is no separate execution engine for the overlapping detect/
// track/classify functionality. A SELECT of the shape
//
//	SELECT id, Color(Crop(data, T.bbox)) AS color, T.iid, T.bbox, ...
//	FROM MyVideo
//	JOIN LATERAL UNNEST(EXTRACT_OBJECT(data, Yolo, NorFairTracker))
//	  AS T(iid, label, bbox, score)
//	[WHERE T.label = 'car' AND T.score > 0.5 AND ... = 'red']
//
// lowers to one basic query per candidate object class (one lane each),
// and the lanes execute as a single shared scan: one detector run and
// one tracker per class per frame, exactly like N OO queries multiplexed
// over one stream. Selects that do not fit this shape (joins over
// materialized tables, arbitrary UDFs) fall back to the row-at-a-time
// relational evaluator, which also serves as the EVA cost-model baseline
// (NewEVABaseline).

import (
	"fmt"
	"sort"
	"strings"

	"vqpy/internal/core"
	"vqpy/internal/geom"
	"vqpy/internal/models"
	"vqpy/internal/plan"
	"vqpy/internal/video"
)

// semantic fields a compiled column can refer to.
type sqlField int

const (
	fieldNone sqlField = iota
	fieldFrameID
	fieldData
	fieldTrackID
	fieldLabel
	fieldBBox
	fieldScore
	fieldColor
)

// outItem is one compiled projection column.
type outItem struct {
	name  string
	field sqlField
}

// compiledSelect is a SELECT lowered to IR lanes plus output mapping.
type compiledSelect struct {
	v       *video.Video
	classes []video.Class
	queries []*core.Query
	items   []outItem
}

// sqlDefaultClasses are the candidate classes of an unrestricted
// EXTRACT_OBJECT when the detector profile does not narrow them.
var sqlDefaultClasses = []video.Class{
	video.ClassPerson, video.ClassCar, video.ClassBus, video.ClassTruck, video.ClassBall,
}

// colResolver maps column references of one SELECT to semantic fields.
type colResolver struct {
	baseName    string
	lateralName string
	lateralCols map[string]sqlField // declared col name → field
}

func newColResolver(sel *Select) *colResolver {
	r := &colResolver{baseName: sel.From.Name, lateralCols: map[string]sqlField{}}
	if sel.From.Alias != "" {
		r.baseName = sel.From.Alias
	}
	if sel.Lateral != nil {
		r.lateralName = sel.Lateral.Alias
		fields := []sqlField{fieldTrackID, fieldLabel, fieldBBox, fieldScore}
		for i, col := range sel.Lateral.Cols {
			if i < len(fields) {
				r.lateralCols[col] = fields[i]
			}
		}
	}
	return r
}

// resolve maps a ColRef to a semantic field; fieldNone when unknown.
func (r *colResolver) resolve(ref *ColRef) sqlField {
	if ref.Table == "" || ref.Table == r.lateralName {
		if f, ok := r.lateralCols[ref.Column]; ok {
			return f
		}
	}
	if ref.Table == "" || ref.Table == r.baseName {
		switch ref.Column {
		case "id":
			return fieldFrameID
		case "data":
			return fieldData
		}
	}
	return fieldNone
}

// isColorCall recognizes Color(Crop(data, <bbox>)) — the per-object
// classifier invocation of the paper's SQL scripts.
func (r *colResolver) isColorCall(ex Expr) bool {
	call, ok := ex.(*CallExpr)
	if !ok || call.Name != "color" || len(call.Args) != 1 {
		return false
	}
	crop, ok := call.Args[0].(*CallExpr)
	if !ok || crop.Name != "crop" || len(crop.Args) != 2 {
		return false
	}
	dataRef, ok := crop.Args[0].(*ColRef)
	if !ok || r.resolve(dataRef) != fieldData {
		return false
	}
	boxRef, ok := crop.Args[1].(*ColRef)
	return ok && r.resolve(boxRef) == fieldBBox
}

// fieldProp maps a semantic field to the IR property it filters or
// outputs on the lane's single instance.
func fieldProp(f sqlField) (string, bool) {
	switch f {
	case fieldFrameID:
		return core.PropFrameIdx, true
	case fieldTrackID:
		return core.PropTrackID, true
	case fieldScore:
		return core.PropScore, true
	case fieldColor:
		return "color", true
	}
	return "", false
}

// sqlOp maps a SQL comparison operator to a predicate constructor.
func sqlOp(b core.PropRef, op string, val any) (core.Pred, bool) {
	switch op {
	case "=":
		return b.Eq(val), true
	case "!=":
		return b.Ne(val), true
	case ">":
		return b.Gt(val), true
	case ">=":
		return b.Ge(val), true
	case "<":
		return b.Lt(val), true
	case "<=":
		return b.Le(val), true
	}
	return nil, false
}

// compileSelect lowers a SELECT over a registered video table into IR
// lanes. ok=false (with nil error) means the statement does not fit the
// compilable shape and should take the relational path.
func (e *Engine) compileSelect(sel *Select) (*compiledSelect, bool, error) {
	v, isVideo := e.videoTables[sel.From.Name]
	if !isVideo || sel.Join != nil || sel.Lateral == nil {
		return nil, false, nil
	}
	if sel.Lateral.Call == nil || sel.Lateral.Call.Name != "extract_object" ||
		len(sel.Lateral.Call.Args) != 3 {
		return nil, false, nil
	}
	r := newColResolver(sel)
	// The first argument must be the frame-data column; anything else is
	// left to the row evaluator, which rejects it with a proper error.
	dataRef, ok := sel.Lateral.Call.Args[0].(*ColRef)
	if !ok || r.resolve(dataRef) != fieldData {
		return nil, false, nil
	}
	detRef, ok := sel.Lateral.Call.Args[1].(*ColRef)
	if !ok || detRef.Table != "" {
		return nil, false, nil
	}
	detName := detRef.Column
	if mapped, ok := detectorAliases[strings.ToLower(detName)]; ok {
		detName = mapped
	}
	if _, err := e.registry.Detector(detName); err != nil {
		return nil, false, nil
	}

	// WHERE: a conjunction of supported single-object predicates.
	type cmpSpec struct {
		field sqlField
		op    string
		value any
	}
	var cmps []cmpSpec
	classRestrict := video.ClassUnknown
	needColor := false
	supported := true
	var walk func(ex Expr)
	walk = func(ex Expr) {
		if !supported || ex == nil {
			return
		}
		b, ok := ex.(*BinExpr)
		if !ok {
			supported = false
			return
		}
		if b.Op == "and" {
			walk(b.Left)
			walk(b.Right)
			return
		}
		// Normalize to <expr> <op> <literal>.
		lit, isLit := b.Right.(*Lit)
		if !isLit {
			supported = false
			return
		}
		if ref, isRef := b.Left.(*ColRef); isRef {
			f := r.resolve(ref)
			if f == fieldLabel {
				s, isStr := lit.Value.(string)
				cls := video.ParseClass(s)
				if b.Op != "=" || !isStr || cls == video.ClassUnknown {
					supported = false
					return
				}
				if classRestrict != video.ClassUnknown && classRestrict != cls {
					supported = false // contradictory restriction: keep legacy semantics
					return
				}
				classRestrict = cls
				return
			}
			if _, ok := fieldProp(f); ok && f != fieldColor {
				cmps = append(cmps, cmpSpec{field: f, op: b.Op, value: lit.Value})
				return
			}
			supported = false
			return
		}
		if r.isColorCall(b.Left) {
			needColor = true
			cmps = append(cmps, cmpSpec{field: fieldColor, op: b.Op, value: lit.Value})
			return
		}
		supported = false
	}
	if sel.Where != nil {
		walk(sel.Where)
	}
	if !supported {
		return nil, false, nil
	}

	// Projection items.
	var items []outItem
	for _, item := range sel.Items {
		if item.Star {
			return nil, false, nil
		}
		switch ex := item.Expr.(type) {
		case *ColRef:
			f := r.resolve(ex)
			if f == fieldNone {
				return nil, false, nil
			}
			name := item.Alias
			if name == "" {
				name = ex.Column
			}
			items = append(items, outItem{name: name, field: f})
		case *CallExpr:
			if !r.isColorCall(item.Expr) {
				return nil, false, nil
			}
			needColor = true
			name := item.Alias
			if name == "" {
				name = "color"
			}
			items = append(items, outItem{name: name, field: fieldColor})
		default:
			return nil, false, nil
		}
	}

	// Candidate classes: the label restriction, or the detector's class
	// coverage.
	classes := sqlDefaultClasses
	if classRestrict != video.ClassUnknown {
		classes = []video.Class{classRestrict}
	} else if prof, ok := models.ProfileOf(detName); ok && len(prof.Classes) > 0 {
		classes = append([]video.Class{}, prof.Classes...)
		sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	}

	// One IR lane per class: the shared-scan engine merges their scan
	// prefixes into one detector run per frame.
	queries := make([]*core.Query, 0, len(classes))
	for _, cls := range classes {
		t := core.NewVObj("sql_"+cls.String(), cls).Detector(detName)
		if needColor {
			t.StatelessModel("color", "color_detect", true)
		}
		var preds []core.Pred
		for _, c := range cmps {
			prop, _ := fieldProp(c.field)
			p, ok := sqlOp(core.P("o", prop), c.op, c.value)
			if !ok {
				return nil, false, nil
			}
			preds = append(preds, p)
		}
		q := core.NewQuery(fmt.Sprintf("sql:%s:%s", sel.From.Name, cls))
		q.Use("o", t)
		if len(preds) > 0 {
			q.Where(core.And(preds...))
		}
		sels := []core.Selector{
			core.Sel("o", core.PropTrackID),
			core.Sel("o", core.PropClass),
			core.Sel("o", core.PropBBox),
			core.Sel("o", core.PropScore),
		}
		if needColor {
			sels = append(sels, core.Sel("o", "color"))
		}
		q.FrameOutput(sels...)
		queries = append(queries, q)
	}

	return &compiledSelect{v: v, classes: classes, queries: queries, items: items}, true, nil
}

// execCompiledSelect runs the lowered lanes through the planner's
// shared-scan path and materializes the relational result.
func (e *Engine) execCompiledSelect(cs *compiledSelect) (*Table, error) {
	pl, err := plan.NewPlanner(plan.Options{Env: e.env, Registry: e.registry})
	if err != nil {
		return nil, err
	}
	nodes := make([]core.QueryNode, len(cs.queries))
	for i, q := range cs.queries {
		nodes[i] = q
	}
	results, err := pl.RunShared(nodes, cs.v)
	if err != nil {
		return nil, err
	}

	// Per-lane frame → hit lookup (hits arrive in frame order).
	hitAt := make([]map[int]int, len(results))
	for li, rr := range results {
		hitAt[li] = make(map[int]int, len(rr.Basic.Hits))
		for hi := range rr.Basic.Hits {
			hitAt[li][rr.Basic.Hits[hi].FrameIdx] = hi
		}
	}

	out := &Table{}
	for _, item := range cs.items {
		out.Cols = append(out.Cols, item.name)
	}
	// Global object ids: per-lane track ids remapped in first-appearance
	// order, so ids are unique across classes (a single EVA tracker
	// numbers all classes from one sequence).
	type laneTrack struct{ lane, track int }
	iids := map[laneTrack]int{}
	nextIID := 1
	for fi := range cs.v.Frames {
		frame := &cs.v.Frames[fi]
		for li, rr := range results {
			hi, ok := hitAt[li][frame.Index]
			if !ok {
				continue
			}
			for _, obj := range rr.Basic.Hits[hi].Objects {
				var iid int
				if obj.TrackID < 0 {
					// Not yet confirmed by the tracker: a distinct
					// unidentified object, numbered fresh.
					iid = nextIID
					nextIID++
				} else {
					key := laneTrack{li, obj.TrackID}
					seen := false
					if iid, seen = iids[key]; !seen {
						iid = nextIID
						nextIID++
						iids[key] = iid
					}
				}
				row := Row{}
				for _, item := range cs.items {
					switch item.field {
					case fieldFrameID:
						row[item.name] = float64(frame.Index)
					case fieldData:
						row[item.name] = frame
					case fieldTrackID:
						row[item.name] = float64(iid)
					case fieldLabel:
						row[item.name] = cs.classes[li].String()
					case fieldBBox:
						if v, ok := obj.Values[core.PropBBox]; ok {
							row[item.name] = v.(geom.BBox)
						}
					case fieldScore:
						row[item.name] = obj.Values[core.PropScore]
					case fieldColor:
						row[item.name] = obj.Values["color"]
					}
				}
				out.Rows = append(out.Rows, row)
			}
		}
	}
	return out, nil
}
