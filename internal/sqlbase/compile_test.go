package sqlbase

import (
	"testing"

	"vqpy/internal/models"
	"vqpy/internal/video"
)

// plannerEngine builds the default (planner-backed) engine.
func plannerEngine(seed uint64) (*Engine, *models.Env) {
	env := models.NewEnv(seed)
	env.NoBurn = true
	e := NewEngine(env, models.BuiltinRegistry())
	RegisterStandardUDFs(e)
	return e, env
}

// TestPlannerSelectRoutesThroughIR is the frontend-unification check: a
// filtered SELECT over a video table executes through the planner/IR
// shared-scan path — one detector invocation per frame, no per-row UDF
// wrapping — and still answers the query.
func TestPlannerSelectRoutesThroughIR(t *testing.T) {
	e, env := plannerEngine(21)
	v := video.CityFlow(21, 30).Generate()
	e.RegisterVideo("v.mp4", v)
	res, err := e.ExecScript([]string{
		`LOAD VIDEO 'v.mp4' INTO MyVideo;`,
		`CREATE FUNCTION Color IMPL './color.py';`,
		`SELECT id, T.iid, T.bbox
		   FROM MyVideo
		   JOIN LATERAL UNNEST(EXTRACT_OBJECT(data, Yolo, NorFairTracker))
		   AS T(iid, label, bbox, score)
		   WHERE T.label = 'car' AND T.score > 0.5 AND Color(Crop(data, T.bbox)) = 'red';`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(res.Rows) == 0 {
		t.Fatal("planner-path select returned nothing")
	}
	truth := v.FramesMatching(func(o video.Object) bool {
		return o.Class == video.ClassCar && o.Color == video.ColorRed
	})
	tp := 0
	got := res.FrameSet("id")
	for f := range got {
		if truth[f] {
			tp++
		}
	}
	if prec := float64(tp) / float64(len(got)); prec < 0.6 {
		t.Errorf("precision = %.2f (%d/%d frames)", prec, tp, len(got))
	}
	// The defining properties of the IR path: the detector ran exactly
	// once per frame for the whole statement, and EVA's per-row pandas
	// wrapping never happened.
	if got := env.Clock.Invocations("yolox"); got != int64(len(v.Frames)) {
		t.Errorf("detector invocations = %d, want %d (once per frame)", got, len(v.Frames))
	}
	if env.Clock.Account("eva:udf_wrap") != 0 {
		t.Error("planner path charged per-row UDF wrapping")
	}
	if env.Clock.Account("eva:crop") != 0 {
		t.Error("planner path charged per-row crops")
	}
}

// TestPlannerEngineRedCarScript runs the paper's full Figure 20 script
// on the default engine: the video-table CREATE TABLE AS goes through
// the planner, the final SELECT over the materialized table stays
// relational, and the answer still matches ground truth.
func TestPlannerEngineRedCarScript(t *testing.T) {
	e, env := plannerEngine(23)
	v := video.CityFlow(23, 30).Generate()
	e.RegisterVideo("v.mp4", v)
	res, err := e.ExecScript(RedCarScript("v.mp4"))
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(res.Rows) == 0 {
		t.Fatal("red car script returned nothing")
	}
	truth := v.FramesMatching(func(o video.Object) bool {
		return o.Class == video.ClassCar && o.Color == video.ColorRed
	})
	tp := 0
	got := res.FrameSet("id")
	for f := range got {
		if truth[f] {
			tp++
		}
	}
	if prec := float64(tp) / float64(len(got)); prec < 0.6 {
		t.Errorf("precision = %.2f", prec)
	}
	if got := env.Clock.Invocations("yolox"); got != int64(len(v.Frames)) {
		t.Errorf("detector invocations = %d, want %d", got, len(v.Frames))
	}
	if env.Clock.Account("eva:udf_wrap") != 0 {
		t.Error("planner path charged per-row UDF wrapping")
	}
}

// TestPlannerAgreesWithBaseline compares the two strategies on the same
// query, seed and video: different trackers and evaluation orders allow
// noise-level divergence, but the answers must agree closely.
func TestPlannerAgreesWithBaseline(t *testing.T) {
	v := video.CityFlow(29, 30).Generate()
	run := func(baseline bool) map[int]bool {
		env := models.NewEnv(29)
		env.NoBurn = true
		var e *Engine
		if baseline {
			e = NewEVABaseline(env, models.BuiltinRegistry())
		} else {
			e = NewEngine(env, models.BuiltinRegistry())
		}
		RegisterStandardUDFs(e)
		e.RegisterVideo("v.mp4", v)
		res, err := e.ExecScript(RedCarScript("v.mp4"))
		if err != nil {
			t.Fatal(err)
		}
		return res.FrameSet("id")
	}
	planner := run(false)
	legacy := run(true)
	inter := 0
	for f := range planner {
		if legacy[f] {
			inter++
		}
	}
	union := len(planner) + len(legacy) - inter
	if union == 0 {
		t.Skip("both strategies found nothing on this clip")
	}
	if jac := float64(inter) / float64(union); jac < 0.6 {
		t.Errorf("strategies diverge: jaccard = %.2f (planner %d, legacy %d frames)",
			jac, len(planner), len(legacy))
	}
}

// TestPlannerFallbackToRelational checks that non-video and unsupported
// SELECT shapes still execute on the default engine via the relational
// evaluator.
func TestPlannerFallbackToRelational(t *testing.T) {
	e, _ := plannerEngine(31)
	v := video.CityFlow(31, 10).Generate()
	e.RegisterVideo("v.mp4", v)
	if _, err := e.Exec(`LOAD VIDEO 'v.mp4' INTO MyVideo;`); err != nil {
		t.Fatal(err)
	}
	// Frame-id scan without a lateral clause: relational path.
	res, err := e.Exec(`SELECT id FROM MyVideo WHERE id < 5;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Errorf("rows = %d, want 5", len(res.Rows))
	}
	// Unsupported projection (arithmetic) falls back too.
	if _, err := e.Exec(`SELECT id + 1 AS next FROM MyVideo;`); err != nil {
		t.Fatal(err)
	}
	// Malformed EXTRACT_OBJECT (first argument is not the data column)
	// must not be silently compiled: it falls back to the row evaluator
	// and keeps its error.
	if _, err := e.Exec(`SELECT id, T.iid FROM MyVideo
		JOIN LATERAL UNNEST(EXTRACT_OBJECT(id, Yolo, NorFairTracker))
		AS T(iid, label, bbox, score);`); err == nil {
		t.Error("EXTRACT_OBJECT over a non-data column was accepted")
	}
}
