package sqlbase

import (
	"fmt"
	"strings"

	"vqpy/internal/models"
	"vqpy/internal/track"
	"vqpy/internal/video"
)

// Cost constants reproducing EVA's structural overheads (virtual ms).
// The paper attributes EVA's slowdowns to per-row Python UDF invocation
// through pandas DataFrames, table materialization, and joins; these
// constants put numbers on those mechanisms.
const (
	costUDFWrapMS     = 1.5  // pandas wrapping per UDF invocation
	costCropMS        = 2.0  // Crop() image slicing per call
	costMaterializeMS = 0.2  // per row written by CREATE TABLE AS
	costScanRowMS     = 0.01 // per row scanned
	costJoinProbeMS   = 0.005
	costJoinRowMS     = 0.05
	costDecodeFrameMS = 0.5 // LOAD VIDEO per frame
)

// Row is one relational tuple; keys are lowercase column names,
// unqualified.
type Row map[string]any

// Table is a materialized relation.
type Table struct {
	Name string
	Cols []string
	Rows []Row
}

// UDF is a scalar user-defined function. Implementations should not
// charge the wrapping overhead — the engine does.
type UDF func(env *models.Env, args []any) (any, error)

// TableUDF produces rows per invocation (used by LATERAL UNNEST). The
// lateralCtx carries state that persists across the rows of one lateral
// clause (e.g. the tracker behind EXTRACT_OBJECT).
type TableUDF func(env *models.Env, lctx *lateralCtx, args []any) ([]Row, error)

// Engine is a single-session mini VDBMS.
//
// The engine has two execution strategies for SELECTs over video
// tables. The default (NewEngine) compiles them into the unified
// operator IR of internal/plan and executes through the same planner
// and shared-scan engine as the object-oriented frontend — one detector
// run and one tracker per class per frame, per-row UDF overhead gone.
// The legacy strategy (NewEVABaseline) evaluates rows one at a time
// with EVA's structural overheads charged, reproducing the §5.2
// baseline. Relational statements over materialized tables (joins,
// projections) always use the row evaluator — that part is plain
// relational algebra, not video analytics.
type Engine struct {
	env      *models.Env
	registry *models.Registry

	// legacy selects the EVA cost-model row evaluator for video-table
	// SELECTs instead of the planner/IR path.
	legacy bool

	videos      map[string]*video.Video
	videoTables map[string]*video.Video // frame table name → backing video
	tables      map[string]*Table
	udfs        map[string]UDF
	tableUDFs   map[string]TableUDF
	created     map[string]bool // functions introduced via CREATE FUNCTION

	// trackers are per (lateral invocation site) trackers emulating
	// EVA's NorFairTracker binding.
	trackerSeq int
}

// NewEngine returns an engine bound to a model environment; SELECTs
// over video tables execute through the planner/IR shared-scan path.
// Built-in special forms (EXTRACT_OBJECT, Crop) are pre-registered;
// scalar UDFs must be registered then declared via CREATE FUNCTION.
func NewEngine(env *models.Env, registry *models.Registry) *Engine {
	e := &Engine{
		env: env, registry: registry,
		videos:      make(map[string]*video.Video),
		videoTables: make(map[string]*video.Video),
		tables:      make(map[string]*Table),
		udfs:        make(map[string]UDF),
		tableUDFs:   make(map[string]TableUDF),
		created:     make(map[string]bool),
	}
	e.tableUDFs["extract_object"] = extractObject
	e.udfs["crop"] = cropUDF
	return e
}

// NewEVABaseline returns an engine that evaluates video-table SELECTs
// row by row with EVA's structural overheads (pandas UDF wrapping,
// materialization, join probes) charged to the ledger — the §5.2
// baseline the benchmarks compare against.
func NewEVABaseline(env *models.Env, registry *models.Registry) *Engine {
	e := NewEngine(env, registry)
	e.legacy = true
	return e
}

// RegisterVideo makes a video loadable under the given path string.
func (e *Engine) RegisterVideo(path string, v *video.Video) { e.videos[path] = v }

// RegisterUDF registers a Go scalar UDF under a name (CREATE FUNCTION
// must still declare it, as in the paper's scripts).
func (e *Engine) RegisterUDF(name string, fn UDF) { e.udfs[strings.ToLower(name)] = fn }

// Table returns a materialized table.
func (e *Engine) Table(name string) (*Table, bool) {
	t, ok := e.tables[strings.ToLower(name)]
	return t, ok
}

// Exec parses and executes one statement, returning a result table for
// SELECT (nil otherwise).
func (e *Engine) Exec(src string) (*Table, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.ExecStmt(st)
}

// ExecScript executes multiple semicolon-separated statements, returning
// the result of the last SELECT.
func (e *Engine) ExecScript(stmts []string) (*Table, error) {
	var last *Table
	for _, s := range stmts {
		if strings.TrimSpace(s) == "" {
			continue
		}
		t, err := e.Exec(s)
		if err != nil {
			return nil, fmt.Errorf("%w\nin statement: %s", err, s)
		}
		if t != nil {
			last = t
		}
	}
	return last, nil
}

// ExecStmt executes a parsed statement.
func (e *Engine) ExecStmt(st Statement) (*Table, error) {
	switch st := st.(type) {
	case *LoadVideo:
		v, ok := e.videos[st.Path]
		if !ok {
			return nil, fmt.Errorf("sqlbase: no video registered for path %q", st.Path)
		}
		tbl := &Table{Name: st.Table, Cols: []string{"id", "data"}}
		for i := range v.Frames {
			e.env.Clock.Charge("eva:decode", costDecodeFrameMS)
			tbl.Rows = append(tbl.Rows, Row{"id": float64(v.Frames[i].Index), "data": &v.Frames[i]})
		}
		e.tables[st.Table] = tbl
		e.videoTables[st.Table] = v
		return nil, nil

	case *CreateFunction:
		if _, ok := e.udfs[st.Name]; !ok {
			return nil, fmt.Errorf("sqlbase: CREATE FUNCTION %s: no Go implementation registered", st.Name)
		}
		e.created[st.Name] = true
		return nil, nil

	case *CreateTableAs:
		res, planned, err := e.runSelect(st.Select)
		if err != nil {
			return nil, err
		}
		if !planned {
			// Only the row-at-a-time path pays EVA's per-row
			// materialization toll; the planner path streams its output
			// straight into the table.
			e.env.Clock.Charge("eva:materialize", costMaterializeMS*float64(len(res.Rows)))
		}
		res.Name = st.Table
		e.tables[st.Table] = res
		return nil, nil

	case *Drop:
		if st.Function {
			if !e.created[st.Name] && !st.IfExists {
				return nil, fmt.Errorf("sqlbase: DROP FUNCTION %s: not found", st.Name)
			}
			delete(e.created, st.Name)
			return nil, nil
		}
		if _, ok := e.tables[st.Name]; !ok && !st.IfExists {
			return nil, fmt.Errorf("sqlbase: DROP TABLE %s: not found", st.Name)
		}
		delete(e.tables, st.Name)
		delete(e.videoTables, st.Name)
		return nil, nil

	case *Select:
		t, _, err := e.runSelect(st)
		return t, err
	}
	return nil, fmt.Errorf("sqlbase: unknown statement %T", st)
}

// runSelect executes a SELECT through the planner/IR path when the
// engine is planner-backed and the statement fits the compilable
// video-table shape; everything else takes the relational row
// evaluator. planned reports which path ran.
func (e *Engine) runSelect(sel *Select) (t *Table, planned bool, err error) {
	if !e.legacy {
		cs, ok, err := e.compileSelect(sel)
		if err != nil {
			return nil, false, err
		}
		if ok {
			t, err := e.execCompiledSelect(cs)
			return t, true, err
		}
	}
	t, err = e.execSelect(sel)
	return t, false, err
}

// scope resolves column references against one or two bound rows.
type scope struct {
	// frames maps binding name (table name or alias) → row.
	frames map[string]Row
}

func (s *scope) lookup(ref *ColRef) (any, bool) {
	if ref.Table != "" {
		if r, ok := s.frames[ref.Table]; ok {
			v, ok := r[ref.Column]
			return v, ok
		}
		return nil, false
	}
	// Unqualified: search all frames; ambiguity resolves to the first
	// found in insertion order — matches EVA's permissive resolution.
	for _, r := range s.frames {
		if v, ok := r[ref.Column]; ok {
			return v, true
		}
	}
	return nil, false
}

func (e *Engine) execSelect(sel *Select) (*Table, error) {
	base, ok := e.tables[sel.From.Name]
	if !ok {
		return nil, fmt.Errorf("sqlbase: unknown table %q", sel.From.Name)
	}
	baseName := sel.From.Name
	if sel.From.Alias != "" {
		baseName = sel.From.Alias
	}
	e.env.Clock.Charge("eva:scan", costScanRowMS*float64(len(base.Rows)))

	// 1. FROM (+ LATERAL): produce the working row-set as scopes.
	var scopes []*scope
	if sel.Lateral != nil {
		tfn, ok := e.tableUDFs[sel.Lateral.Call.Name]
		if !ok {
			return nil, fmt.Errorf("sqlbase: unknown table function %q", sel.Lateral.Call.Name)
		}
		e.trackerSeq++
		lateralState := &lateralCtx{engine: e}
		for _, row := range base.Rows {
			sc := &scope{frames: map[string]Row{baseName: row}}
			args := make([]any, len(sel.Lateral.Call.Args))
			for i, a := range sel.Lateral.Call.Args {
				// Bare identifiers that are not columns name models
				// (EXTRACT_OBJECT(data, Yolo, NorFairTracker)).
				if ref, isRef := a.(*ColRef); isRef && ref.Table == "" {
					if _, ok := sc.lookup(ref); !ok {
						args[i] = ref.Column
						continue
					}
				}
				v, err := e.eval(a, sc, lateralState)
				if err != nil {
					return nil, err
				}
				args[i] = v
			}
			rows, err := tfn(e.env, lateralState, args)
			if err != nil {
				return nil, err
			}
			for _, un := range rows {
				mapped := Row{}
				for i, col := range sel.Lateral.Cols {
					if i < len(lateralOutputCols) {
						mapped[col] = un[lateralOutputCols[i]]
					}
				}
				scopes = append(scopes, &scope{frames: map[string]Row{
					baseName:          row,
					sel.Lateral.Alias: mapped,
				}})
			}
		}
	} else {
		for _, row := range base.Rows {
			scopes = append(scopes, &scope{frames: map[string]Row{baseName: row}})
		}
	}

	// 2. JOIN: hash join on equality conjuncts, residual evaluated per
	// candidate pair.
	if sel.Join != nil {
		right, ok := e.tables[sel.Join.Table.Name]
		if !ok {
			return nil, fmt.Errorf("sqlbase: unknown table %q", sel.Join.Table.Name)
		}
		rightName := sel.Join.Table.Name
		if sel.Join.Table.Alias != "" {
			rightName = sel.Join.Table.Alias
		}
		e.env.Clock.Charge("eva:scan", costScanRowMS*float64(len(right.Rows)))
		joined, err := e.hashJoin(scopes, right, rightName, sel.Join.On)
		if err != nil {
			return nil, err
		}
		scopes = joined
	}

	// 3. WHERE: conjuncts evaluate left-to-right as written (EVA does
	// no reordering; expensive UDFs placed first in the SQL run first).
	var kept []*scope
	for _, sc := range scopes {
		if sel.Where != nil {
			v, err := e.eval(sel.Where, sc, nil)
			if err != nil {
				return nil, err
			}
			if !truthy(v) {
				continue
			}
		}
		kept = append(kept, sc)
	}

	// 4. Projection.
	out := &Table{}
	for _, sc := range kept {
		row := Row{}
		for _, item := range sel.Items {
			if item.Star {
				for _, fr := range sc.frames {
					for k, v := range fr {
						row[k] = v
					}
				}
				continue
			}
			v, err := e.eval(item.Expr, sc, nil)
			if err != nil {
				return nil, err
			}
			// A UDF returning a Row contributes multiple columns
			// (EVA UDFs may return multi-column DataFrames, e.g. the
			// paper's Add1).
			if multi, ok := v.(Row); ok && item.Alias == "" {
				for k, val := range multi {
					row[k] = val
				}
				continue
			}
			name := item.Alias
			if name == "" {
				name = defaultColName(item.Expr)
			}
			row[name] = v
		}
		out.Rows = append(out.Rows, row)
	}
	if len(out.Rows) > 0 {
		for k := range out.Rows[0] {
			out.Cols = append(out.Cols, k)
		}
	}
	return out, nil
}

// hashJoin joins scopes with a table using extracted equi-conjuncts.
func (e *Engine) hashJoin(left []*scope, right *Table, rightName string, on Expr) ([]*scope, error) {
	eqs, residual := equiConjuncts(on)
	var out []*scope
	if len(eqs) == 0 {
		// Nested loop fallback.
		for _, sc := range left {
			for _, rrow := range right.Rows {
				e.env.Clock.Charge("eva:join", costJoinProbeMS)
				merged := mergeScope(sc, rightName, rrow)
				v, err := e.eval(on, merged, nil)
				if err != nil {
					return nil, err
				}
				if truthy(v) {
					e.env.Clock.Charge("eva:join", costJoinRowMS)
					out = append(out, merged)
				}
			}
		}
		return out, nil
	}
	// Build side: hash right rows by the equality key tuple.
	build := make(map[string][]Row)
	for _, rrow := range right.Rows {
		sc := &scope{frames: map[string]Row{rightName: rrow}}
		key, ok := joinKey(eqs, sc, e, true)
		if !ok {
			continue
		}
		build[key] = append(build[key], rrow)
	}
	for _, sc := range left {
		key, ok := joinKey(eqs, sc, e, false)
		if !ok {
			continue
		}
		for _, rrow := range build[key] {
			e.env.Clock.Charge("eva:join", costJoinProbeMS)
			merged := mergeScope(sc, rightName, rrow)
			if residual != nil {
				v, err := e.eval(residual, merged, nil)
				if err != nil {
					return nil, err
				}
				if !truthy(v) {
					continue
				}
			}
			e.env.Clock.Charge("eva:join", costJoinRowMS)
			out = append(out, merged)
		}
	}
	return out, nil
}

// equiConjunct is one `a.x = b.y` pair usable for hashing.
type equiConjunct struct{ left, right *ColRef }

// equiConjuncts splits an ON expression into hashable equality pairs and
// a residual expression.
func equiConjuncts(on Expr) ([]equiConjunct, Expr) {
	var eqs []equiConjunct
	var residual Expr
	var walk func(Expr)
	walk = func(ex Expr) {
		if b, ok := ex.(*BinExpr); ok {
			if b.Op == "and" {
				walk(b.Left)
				walk(b.Right)
				return
			}
			if b.Op == "=" {
				lc, lok := b.Left.(*ColRef)
				rc, rok := b.Right.(*ColRef)
				if lok && rok {
					eqs = append(eqs, equiConjunct{lc, rc})
					return
				}
			}
		}
		if residual == nil {
			residual = ex
		} else {
			residual = &BinExpr{Op: "and", Left: residual, Right: ex}
		}
	}
	walk(on)
	return eqs, residual
}

// joinKey computes the concatenated key for the build (right) or probe
// (left) side. For each equality, the side whose reference resolves in
// the scope contributes the value.
func joinKey(eqs []equiConjunct, sc *scope, e *Engine, buildSide bool) (string, bool) {
	var b strings.Builder
	for _, eq := range eqs {
		v, ok := sc.lookup(eq.left)
		if !ok {
			v, ok = sc.lookup(eq.right)
		}
		if !ok {
			return "", false
		}
		fmt.Fprintf(&b, "%v|", v)
	}
	return b.String(), true
}

func mergeScope(sc *scope, name string, row Row) *scope {
	frames := make(map[string]Row, len(sc.frames)+1)
	for k, v := range sc.frames {
		frames[k] = v
	}
	frames[name] = row
	return &scope{frames: frames}
}

// lateralCtx carries state across a lateral invocation (the tracker).
type lateralCtx struct {
	engine  *Engine
	tracker *track.Tracker
}

// eval evaluates an expression. lctx is non-nil only while evaluating
// lateral call arguments.
func (e *Engine) eval(ex Expr, sc *scope, lctx *lateralCtx) (any, error) {
	switch ex := ex.(type) {
	case *Lit:
		return ex.Value, nil
	case *ColRef:
		v, ok := sc.lookup(ex)
		if !ok {
			return nil, fmt.Errorf("sqlbase: unknown column %s", exprString(ex))
		}
		return v, nil
	case *CallExpr:
		fn, ok := e.udfs[ex.Name]
		if !ok {
			return nil, fmt.Errorf("sqlbase: unknown function %q", ex.Name)
		}
		args := make([]any, len(ex.Args))
		for i, a := range ex.Args {
			v, err := e.eval(a, sc, lctx)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		// Built-in special forms charge their own costs; user UDFs pay
		// the pandas wrapping toll.
		if ex.Name != "crop" {
			e.env.Clock.Charge("eva:udf_wrap", costUDFWrapMS)
		}
		return fn(e.env, args)
	case *BinExpr:
		switch ex.Op {
		case "and":
			l, err := e.eval(ex.Left, sc, lctx)
			if err != nil {
				return nil, err
			}
			if !truthy(l) {
				return false, nil
			}
			r, err := e.eval(ex.Right, sc, lctx)
			if err != nil {
				return nil, err
			}
			return truthy(r), nil
		case "or":
			l, err := e.eval(ex.Left, sc, lctx)
			if err != nil {
				return nil, err
			}
			if truthy(l) {
				return true, nil
			}
			r, err := e.eval(ex.Right, sc, lctx)
			if err != nil {
				return nil, err
			}
			return truthy(r), nil
		}
		l, err := e.eval(ex.Left, sc, lctx)
		if err != nil {
			return nil, err
		}
		r, err := e.eval(ex.Right, sc, lctx)
		if err != nil {
			return nil, err
		}
		return applyBinOp(ex.Op, l, r)
	}
	return nil, fmt.Errorf("sqlbase: cannot evaluate %T", ex)
}

func truthy(v any) bool {
	switch v := v.(type) {
	case bool:
		return v
	case float64:
		return v != 0
	case string:
		return v != ""
	case nil:
		return false
	}
	return true
}

func applyBinOp(op string, l, r any) (any, error) {
	lf, lIsNum := toFloat(l)
	rf, rIsNum := toFloat(r)
	if lIsNum && rIsNum {
		switch op {
		case "+":
			return lf + rf, nil
		case "-":
			return lf - rf, nil
		case "=":
			return lf == rf, nil
		case "!=":
			return lf != rf, nil
		case ">":
			return lf > rf, nil
		case ">=":
			return lf >= rf, nil
		case "<":
			return lf < rf, nil
		case "<=":
			return lf <= rf, nil
		}
	}
	ls, lok := l.(string)
	rs, rok := r.(string)
	if lok && rok {
		switch op {
		case "=":
			return ls == rs, nil
		case "!=":
			return ls != rs, nil
		case ">":
			return ls > rs, nil
		case "<":
			return ls < rs, nil
		}
	}
	switch op {
	case "=":
		return fmt.Sprint(l) == fmt.Sprint(r), nil
	case "!=":
		return fmt.Sprint(l) != fmt.Sprint(r), nil
	}
	return nil, fmt.Errorf("sqlbase: cannot apply %q to %T and %T", op, l, r)
}

func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case int:
		return float64(n), true
	}
	return 0, false
}

func defaultColName(e Expr) string {
	switch e := e.(type) {
	case *ColRef:
		return e.Column
	case *CallExpr:
		return e.Name
	}
	return "col"
}
