// Package sqlbase implements a miniature SQL-based video database in the
// style of EVA (Xu et al., SIGMOD'22), the paper's strongest SQL baseline
// (§5.2). It supports exactly the statement shapes of the paper's
// Appendix A programs (Figures 20, 22, 24):
//
//	LOAD VIDEO 'clip.mp4' INTO MyVideo;
//	CREATE FUNCTION Color IMPL './color.py';
//	CREATE TABLE T AS SELECT id, Color(Crop(data, bbox)), T.iid, ...
//	    FROM MyVideo
//	    JOIN LATERAL UNNEST(EXTRACT_OBJECT(data, Yolo, NorFairTracker))
//	    AS T(iid, label, bbox, score);
//	SELECT a.id FROM A JOIN B ON a.id = b.added_id WHERE ... ;
//	DROP TABLE IF EXISTS T;
//
// The engine reproduces EVA's structural cost characteristics: UDFs are
// invoked per row with a wrapping overhead (the paper notes every model
// had to be wrapped to adapt pandas DataFrames), tables materialize row
// by row, rows carry no object identity (so no cross-frame memoization is
// possible), and WHERE conjuncts evaluate in the order written (no
// predicate reordering — the paper's "EVA does not support creating VIEW
// ... filters cannot be pushed", which the benchmarks exercise via naive
// vs. manually refined SQL).
package sqlbase

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokIdent tokenKind = iota
	tokString
	tokNumber
	tokSymbol
	tokEOF
)

type token struct {
	kind tokenKind
	text string // idents lowercased; strings without quotes
	pos  int
}

// lex splits a SQL text into tokens. Identifiers are case-insensitive
// and lowercased; string literals use single quotes.
func lex(src string) ([]token, error) {
	var out []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-': // comment to EOL
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '\'':
			j := i + 1
			for j < n && src[j] != '\'' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sqlbase: unterminated string at %d", i)
			}
			out = append(out, token{tokString, src[i+1 : j], i})
			i = j + 1
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(src[i+1]))):
			j := i
			for j < n && (unicode.IsDigit(rune(src[j])) || src[j] == '.') {
				j++
			}
			out = append(out, token{tokNumber, src[i:j], i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			out = append(out, token{tokIdent, strings.ToLower(src[i:j]), i})
			i = j
		default:
			// Multi-char comparison operators.
			if i+1 < n {
				two := src[i : i+2]
				if two == ">=" || two == "<=" || two == "!=" || two == "<>" || two == "==" {
					out = append(out, token{tokSymbol, two, i})
					i += 2
					continue
				}
			}
			switch c {
			case '(', ')', ',', ';', '.', '=', '>', '<', '*', '+', '-', '/':
				out = append(out, token{tokSymbol, string(c), i})
				i++
			default:
				return nil, fmt.Errorf("sqlbase: unexpected character %q at %d", c, i)
			}
		}
	}
	out = append(out, token{tokEOF, "", n})
	return out, nil
}
