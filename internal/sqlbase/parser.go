package sqlbase

import (
	"fmt"
	"strconv"
)

// parser is a recursive-descent parser over the lexed tokens.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a single SQL statement (a trailing semicolon is
// optional).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return st, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		t := p.cur()
		p.pos++
		return t, nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlbase: parse error at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) ident() (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errf("expected identifier, found %q", p.cur().text)
	}
	t := p.cur()
	p.pos++
	return t.text, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.accept(tokIdent, "load"):
		if _, err := p.expect(tokIdent, "video"); err != nil {
			return nil, err
		}
		if p.cur().kind != tokString {
			return nil, p.errf("expected video path string")
		}
		path := p.cur().text
		p.pos++
		if _, err := p.expect(tokIdent, "into"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &LoadVideo{Path: path, Table: table}, nil

	case p.accept(tokIdent, "create"):
		switch {
		case p.accept(tokIdent, "function"):
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokIdent, "impl"); err != nil {
				return nil, err
			}
			if p.cur().kind != tokString {
				return nil, p.errf("expected IMPL path string")
			}
			impl := p.cur().text
			p.pos++
			return &CreateFunction{Name: name, Impl: impl}, nil
		case p.accept(tokIdent, "table"):
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokIdent, "as"); err != nil {
				return nil, err
			}
			sel, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			return &CreateTableAs{Table: name, Select: sel}, nil
		}
		return nil, p.errf("expected FUNCTION or TABLE after CREATE")

	case p.accept(tokIdent, "drop"):
		isFunc := false
		switch {
		case p.accept(tokIdent, "table"):
		case p.accept(tokIdent, "function"):
			isFunc = true
		default:
			return nil, p.errf("expected TABLE or FUNCTION after DROP")
		}
		ifExists := false
		if p.accept(tokIdent, "if") {
			if _, err := p.expect(tokIdent, "exists"); err != nil {
				return nil, err
			}
			ifExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &Drop{Function: isFunc, IfExists: ifExists, Name: name}, nil

	case p.at(tokIdent, "select"):
		return p.selectStmt()
	}
	return nil, p.errf("unknown statement %q", p.cur().text)
}

func (p *parser) selectStmt() (*Select, error) {
	if _, err := p.expect(tokIdent, "select"); err != nil {
		return nil, err
	}
	sel := &Select{}
	for {
		if p.accept(tokSymbol, "*") {
			sel.Items = append(sel.Items, SelectItem{Star: true})
		} else {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(tokIdent, "as") {
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			}
			sel.Items = append(sel.Items, item)
		}
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokIdent, "from"); err != nil {
		return nil, err
	}
	from, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	sel.From = from

	for p.at(tokIdent, "join") {
		p.pos++
		if p.accept(tokIdent, "lateral") {
			if sel.Lateral != nil {
				return nil, p.errf("multiple LATERAL clauses")
			}
			if _, err := p.expect(tokIdent, "unnest"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			call, err := p.callExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokIdent, "as"); err != nil {
				return nil, err
			}
			alias, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			var cols []string
			for {
				c, err := p.ident()
				if err != nil {
					return nil, err
				}
				cols = append(cols, c)
				if !p.accept(tokSymbol, ",") {
					break
				}
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			sel.Lateral = &LateralClause{Call: call, Alias: alias, Cols: cols}
			continue
		}
		if sel.Join != nil {
			return nil, p.errf("multiple JOIN clauses")
		}
		tr, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokIdent, "on"); err != nil {
			return nil, err
		}
		on, err := p.expression()
		if err != nil {
			return nil, err
		}
		sel.Join = &JoinClause{Table: tr, On: on}
	}

	if p.accept(tokIdent, "where") {
		w, err := p.expression()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	return sel, nil
}

func (p *parser) tableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Name: name}
	// Optional alias: a bare identifier that is not a clause keyword.
	if p.cur().kind == tokIdent {
		switch p.cur().text {
		case "join", "where", "on", "lateral", "as", "group", "order":
		default:
			tr.Alias = p.cur().text
			p.pos++
		}
	}
	return tr, nil
}

// expression parses OR-separated AND chains of comparisons.
func (p *parser) expression() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "or") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "or", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) andExpr() (Expr, error) {
	left, err := p.comparison()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "and") {
		right, err := p.comparison()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "and", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) comparison() (Expr, error) {
	left, err := p.additive()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokSymbol {
		op := p.cur().text
		switch op {
		case "=", "==", "!=", "<>", ">", ">=", "<", "<=":
			p.pos++
			right, err := p.additive()
			if err != nil {
				return nil, err
			}
			if op == "==" {
				op = "="
			}
			if op == "<>" {
				op = "!="
			}
			return &BinExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) additive() (Expr, error) {
	left, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokSymbol && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.cur().text
		p.pos++
		right, err := p.primary()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &Lit{Value: f}, nil
	case tokString:
		p.pos++
		return &Lit{Value: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.pos++
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokIdent:
		// Function call or column reference.
		if p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			return p.callExpr()
		}
		p.pos++
		if p.accept(tokSymbol, ".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: t.text, Column: col}, nil
		}
		return &ColRef{Column: t.text}, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}

func (p *parser) callExpr() (*CallExpr, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	call := &CallExpr{Name: name}
	if !p.at(tokSymbol, ")") {
		for {
			a, err := p.expression()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return call, nil
}
