package sqlbase

// The paper's Appendix A EVA programs, ported verbatim in structure.
// Each script is a statement list executed in order; the final SELECT is
// the query result.

// RedCarScript is Figure 20: detect+track every object, classify color
// on every row, then filter.
func RedCarScript(videoPath string) []string {
	return []string{
		`LOAD VIDEO '` + videoPath + `' INTO MyVideo;`,
		`CREATE FUNCTION Color IMPL './color.py';`,
		`CREATE TABLE TrackResult AS
		   SELECT id, Color(Crop(data, bbox)) AS color, T.iid, T.bbox, T.score, T.label
		   FROM MyVideo
		   JOIN LATERAL UNNEST(EXTRACT_OBJECT(data, Yolo, NorFairTracker))
		   AS T(iid, label, bbox, score);`,
		`SELECT id, iid, bbox
		   FROM TrackResult
		   WHERE color = 'red' AND label = 'car' AND score > 0.5;`,
		`DROP TABLE IF EXISTS MyVideo;`,
		`DROP TABLE IF EXISTS TrackResult;`,
		`DROP FUNCTION IF EXISTS Color;`,
	}
}

// SpeedingCarScript is Figure 22: a lag self-join computes per-object
// velocity.
func SpeedingCarScript(videoPath string) []string {
	return []string{
		`LOAD VIDEO '` + videoPath + `' INTO MyVideo;`,
		`CREATE FUNCTION Add1 IMPL './add1.py';`,
		`CREATE FUNCTION Velocity IMPL './velocity.py';`,
		`CREATE TABLE TrackResult AS
		   SELECT id, data, T.iid, T.bbox, T.score, T.label
		   FROM MyVideo
		   JOIN LATERAL UNNEST(EXTRACT_OBJECT(data, Yolo, NorFairTracker))
		   AS T(iid, label, bbox, score);`,
		`CREATE TABLE TrackResultAdd1 AS
		   SELECT Add1(id, iid, bbox)
		   FROM TrackResult;`,
		`SELECT trackresult.id, trackresult.iid, trackresult.bbox
		   FROM TrackResult
		   JOIN TrackResultAdd1
		   ON trackresult.id = trackresultadd1.added_id
		   AND trackresult.iid = trackresultadd1.cur_iid
		   WHERE trackresult.label = 'car'
		   AND Velocity(trackresult.bbox, trackresultadd1.last_bbox) > 12;`,
		`DROP TABLE IF EXISTS MyVideo;`,
		`DROP TABLE IF EXISTS TrackResult;`,
		`DROP TABLE IF EXISTS TrackResultAdd1;`,
		`DROP FUNCTION IF EXISTS Add1;`,
		`DROP FUNCTION IF EXISTS Velocity;`,
	}
}

// RedSpeedingCarScript is Figure 24 (naive): color is classified for
// every detected object during table creation, the lag join materializes
// a third table, and the final WHERE runs the expensive Velocity UDF
// before the color filter — EVA evaluates conjuncts as written and
// supports no pushdown across the materialized tables.
func RedSpeedingCarScript(videoPath string) []string {
	return []string{
		`LOAD VIDEO '` + videoPath + `' INTO MyVideo;`,
		`CREATE FUNCTION Add1 IMPL './add1.py';`,
		`CREATE FUNCTION Velocity IMPL './velocity.py';`,
		`CREATE FUNCTION Color IMPL './color.py';`,
		`CREATE TABLE TrackResult AS
		   SELECT id, data, Color(Crop(data, bbox)) AS color, T.iid, T.bbox, T.score, T.label
		   FROM MyVideo
		   JOIN LATERAL UNNEST(EXTRACT_OBJECT(data, Yolo, NorFairTracker))
		   AS T(iid, label, bbox, score);`,
		`CREATE TABLE TrackResultAdd1 AS
		   SELECT Add1(id, iid, bbox)
		   FROM TrackResult;`,
		`CREATE TABLE TrackResultJoin AS
		   SELECT trackresult.id, trackresult.iid, trackresult.color,
		          trackresult.bbox, trackresult.label, trackresult.score,
		          trackresultadd1.last_bbox
		   FROM TrackResult
		   JOIN TrackResultAdd1
		   ON trackresult.id = trackresultadd1.added_id
		   AND trackresult.iid = trackresultadd1.cur_iid;`,
		`SELECT id, iid, bbox
		   FROM TrackResultJoin
		   WHERE Velocity(bbox, last_bbox) > 12
		   AND color = 'red' AND label = 'car';`,
		`DROP TABLE IF EXISTS MyVideo;`,
		`DROP TABLE IF EXISTS TrackResult;`,
		`DROP TABLE IF EXISTS TrackResultAdd1;`,
		`DROP TABLE IF EXISTS TrackResultJoin;`,
		`DROP FUNCTION IF EXISTS Add1;`,
		`DROP FUNCTION IF EXISTS Velocity;`,
		`DROP FUNCTION IF EXISTS Color;`,
	}
}

// RedSpeedingCarRefinedScript is the paper's manually optimized variant
// (§5.2: "We manually optimized EVA's SQL queries by pushing down the
// filters"): color and label filter during the first materialization so
// later stages touch far fewer rows, and the cheap conjuncts run before
// the Velocity UDF.
func RedSpeedingCarRefinedScript(videoPath string) []string {
	return []string{
		`LOAD VIDEO '` + videoPath + `' INTO MyVideo;`,
		`CREATE FUNCTION Add1 IMPL './add1.py';`,
		`CREATE FUNCTION Velocity IMPL './velocity.py';`,
		`CREATE FUNCTION Color IMPL './color.py';`,
		`CREATE TABLE RedCars AS
		   SELECT id, data, T.iid, T.bbox, T.score, T.label
		   FROM MyVideo
		   JOIN LATERAL UNNEST(EXTRACT_OBJECT(data, Yolo, NorFairTracker))
		   AS T(iid, label, bbox, score)
		   WHERE T.label = 'car' AND Color(Crop(data, T.bbox)) = 'red';`,
		`CREATE TABLE RedCarsAdd1 AS
		   SELECT Add1(id, iid, bbox)
		   FROM RedCars;`,
		`SELECT redcars.id, redcars.iid, redcars.bbox
		   FROM RedCars
		   JOIN RedCarsAdd1
		   ON redcars.id = redcarsadd1.added_id
		   AND redcars.iid = redcarsadd1.cur_iid
		   WHERE Velocity(redcars.bbox, redcarsadd1.last_bbox) > 12;`,
		`DROP TABLE IF EXISTS MyVideo;`,
		`DROP TABLE IF EXISTS RedCars;`,
		`DROP TABLE IF EXISTS RedCarsAdd1;`,
		`DROP FUNCTION IF EXISTS Add1;`,
		`DROP FUNCTION IF EXISTS Velocity;`,
		`DROP FUNCTION IF EXISTS Color;`,
	}
}

// RegisterStandardUDFs installs the scalar UDFs the scripts declare.
func RegisterStandardUDFs(e *Engine) {
	e.RegisterUDF("Color", ColorUDF(e.registry))
	e.RegisterUDF("Velocity", VelocityUDF())
	e.RegisterUDF("Add1", Add1UDF())
}
