package sqlbase

import (
	"testing"
	"testing/quick"

	"vqpy/internal/sim"
)

// TestLexerNeverPanics feeds random byte soup to the lexer.
func TestLexerNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = lex(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParserNeverPanics feeds random token soup assembled from SQL
// vocabulary to the parser; it must error or succeed, never panic.
func TestParserNeverPanics(t *testing.T) {
	vocab := []string{
		"SELECT", "FROM", "WHERE", "JOIN", "LATERAL", "UNNEST", "AS",
		"CREATE", "TABLE", "FUNCTION", "DROP", "LOAD", "VIDEO", "INTO",
		"AND", "OR", "ON", "IF", "EXISTS", "IMPL",
		"t", "a", "b", "id", "bbox", "Color", "Velocity",
		"(", ")", ",", ";", ".", "=", ">", "<", ">=", "*", "+",
		"'str'", "1", "2.5",
	}
	rng := sim.NewRNG(77)
	f := func() (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		n := 1 + rng.Intn(20)
		src := ""
		for i := 0; i < n; i++ {
			src += vocab[rng.Intn(len(vocab))] + " "
		}
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestScriptsParse parses all four Appendix A scripts end to end.
func TestScriptsParse(t *testing.T) {
	scripts := [][]string{
		RedCarScript("v.mp4"),
		SpeedingCarScript("v.mp4"),
		RedSpeedingCarScript("v.mp4"),
		RedSpeedingCarRefinedScript("v.mp4"),
	}
	for si, script := range scripts {
		for li, stmt := range script {
			if _, err := Parse(stmt); err != nil {
				t.Errorf("script %d statement %d: %v", si, li, err)
			}
		}
	}
}
