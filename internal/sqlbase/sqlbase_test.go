package sqlbase

import (
	"strings"
	"testing"

	"vqpy/internal/geom"
	"vqpy/internal/models"
	"vqpy/internal/video"
)

// testEngine builds the EVA cost-model baseline engine: these tests
// assert the row-at-a-time evaluator and its structural overhead
// accounts. The planner-backed default engine is covered by
// compile_test.go.
func testEngine() (*Engine, *models.Env) {
	env := models.NewEnv(42)
	env.NoBurn = true
	e := NewEVABaseline(env, models.BuiltinRegistry())
	RegisterStandardUDFs(e)
	return e, env
}

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT a.b, 'str' , 12.5 >= x -- comment\nFROM t;")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokIdent, tokIdent, tokSymbol, tokIdent, tokSymbol, tokString, tokSymbol, tokNumber, tokSymbol, tokIdent, tokIdent, tokIdent, tokSymbol, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d kind = %v, want %v (%q)", i, toks[i].kind, k, toks[i].text)
		}
	}
	if toks[0].text != "select" {
		t.Error("idents should be lowercased")
	}
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("a ~ b"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestParserStatements(t *testing.T) {
	cases := []string{
		`LOAD VIDEO 'v.mp4' INTO MyVideo;`,
		`CREATE FUNCTION Color IMPL './color.py';`,
		`DROP TABLE IF EXISTS T;`,
		`DROP FUNCTION IF EXISTS F;`,
		`SELECT a, b FROM t WHERE a > 1 AND b = 'x';`,
		`SELECT * FROM t;`,
		`CREATE TABLE T2 AS SELECT id FROM t;`,
		`SELECT t.a FROM t JOIN u ON t.a = u.b WHERE t.a != 2;`,
		`SELECT id, T.iid FROM MyVideo
		 JOIN LATERAL UNNEST(EXTRACT_OBJECT(data, Yolo, NorFairTracker))
		 AS T(iid, label, bbox, score) WHERE T.score > 0.5;`,
		`SELECT Add1(id, iid, bbox) FROM t;`,
		`SELECT a + 1 AS b FROM t;`,
		`SELECT a FROM t WHERE a > 1 OR a < 0;`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
	bad := []string{
		``,
		`SELECT`,
		`SELECT a FROM`,
		`LOAD VIDEO INTO x;`,
		`CREATE TABLE t;`,
		`DROP x;`,
		`SELECT a FROM t WHERE;`,
		`SELECT a FROM t extra garbage here (;`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestLoadVideoAndScan(t *testing.T) {
	e, env := testEngine()
	v := video.CityFlow(1, 10).Generate()
	e.RegisterVideo("v.mp4", v)
	if _, err := e.Exec(`LOAD VIDEO 'v.mp4' INTO MyVideo;`); err != nil {
		t.Fatal(err)
	}
	res, err := e.Exec(`SELECT id FROM MyVideo WHERE id < 5;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Errorf("rows = %d, want 5", len(res.Rows))
	}
	if env.Clock.Account("eva:decode") == 0 {
		t.Error("no decode cost charged")
	}
	// Unregistered path fails.
	if _, err := e.Exec(`LOAD VIDEO 'missing.mp4' INTO X;`); err == nil {
		t.Error("missing video accepted")
	}
}

func TestExtractObjectLateral(t *testing.T) {
	e, _ := testEngine()
	v := video.CityFlow(2, 20).Generate()
	e.RegisterVideo("v.mp4", v)
	_, err := e.ExecScript([]string{
		`LOAD VIDEO 'v.mp4' INTO MyVideo;`,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Exec(`SELECT id, T.iid, T.label, T.score FROM MyVideo
		JOIN LATERAL UNNEST(EXTRACT_OBJECT(data, Yolo, NorFairTracker))
		AS T(iid, label, bbox, score);`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no objects extracted")
	}
	// Track ids must persist across frames: distinct iids << rows.
	distinct := res.DistinctCount("iid")
	if distinct >= len(res.Rows) {
		t.Errorf("tracker assigned unique id per row (%d ids over %d rows)", distinct, len(res.Rows))
	}
	labels := map[string]bool{}
	for _, r := range res.Rows {
		labels[r["label"].(string)] = true
	}
	if !labels["car"] {
		t.Errorf("no cars labeled: %v", labels)
	}
}

func TestRedCarScriptEndToEnd(t *testing.T) {
	e, env := testEngine()
	v := video.CityFlow(3, 30).Generate()
	e.RegisterVideo("v.mp4", v)
	res, err := e.ExecScript(RedCarScript("v.mp4"))
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(res.Rows) == 0 {
		t.Fatal("red car query returned nothing")
	}
	// Frames found must correlate with ground truth.
	truth := v.FramesMatching(func(o video.Object) bool {
		return o.Class == video.ClassCar && o.Color == video.ColorRed
	})
	got := res.FrameSet("id")
	tp := 0
	for f := range got {
		if truth[f] {
			tp++
		}
	}
	if tp == 0 {
		t.Error("no true-positive frames")
	}
	prec := float64(tp) / float64(len(got))
	if prec < 0.6 {
		t.Errorf("precision = %.2f", prec)
	}
	// Every script model cost must be charged: yolox on every frame,
	// color on every object row.
	if env.Clock.Account("yolox") < float64(len(v.Frames))*28 {
		t.Error("detector not charged per frame")
	}
	if env.Clock.Account("color_detect") == 0 || env.Clock.Account("eva:udf_wrap") == 0 {
		t.Error("UDF costs not charged")
	}
	// Tables dropped at the end.
	if _, ok := e.Table("trackresult"); ok {
		t.Error("TrackResult not dropped")
	}
}

func TestSpeedingCarScriptEndToEnd(t *testing.T) {
	e, env := testEngine()
	sc := video.Southampton(4, 20)
	sc.SpeederFrac = 0.4
	v := sc.Generate()
	e.RegisterVideo("v.mp4", v)
	res, err := e.ExecScript(SpeedingCarScript("v.mp4"))
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no result")
	}
	truthSpeeders := v.GroundTruthCount(func(o video.Object) bool {
		return o.IsVehicle() && o.Speed > video.SpeedingThreshold
	})
	if truthSpeeders > 0 && len(res.Rows) == 0 {
		t.Error("speeding query found nothing despite speeders present")
	}
	if env.Clock.Account("eva:join") == 0 {
		t.Error("join cost not charged")
	}
	if env.Clock.Account("eva:materialize") == 0 {
		t.Error("materialization cost not charged")
	}
}

func TestRedSpeedingNaiveVsRefined(t *testing.T) {
	runScript := func(script func(string) []string) (float64, int) {
		e, env := testEngine()
		sc := video.Jackson(5, 20)
		sc.SpeederFrac = 0.3
		v := sc.Generate()
		e.RegisterVideo("v.mp4", v)
		res, err := e.ExecScript(script("v.mp4"))
		if err != nil {
			t.Fatal(err)
		}
		rows := 0
		if res != nil {
			rows = len(res.Rows)
		}
		return env.Clock.TotalMS(), rows
	}
	naiveCost, naiveRows := runScript(RedSpeedingCarScript)
	refinedCost, refinedRows := runScript(RedSpeedingCarRefinedScript)
	if refinedCost >= naiveCost {
		t.Errorf("refined script (%.0f ms) not cheaper than naive (%.0f ms)", refinedCost, naiveCost)
	}
	// Both should find a similar result set (same predicates).
	if naiveRows == 0 && refinedRows > 0 {
		t.Logf("naive found 0 rows, refined %d (noise-dependent)", refinedRows)
	}
}

func TestWhereShortCircuitOrder(t *testing.T) {
	// Velocity-first WHERE must charge more Velocity calls than a
	// color-first WHERE on identical data.
	mkEngine := func() (*Engine, *models.Env, *video.Video) {
		e, env := testEngine()
		v := video.CityFlow(6, 10).Generate()
		e.RegisterVideo("v.mp4", v)
		_, err := e.ExecScript([]string{
			`LOAD VIDEO 'v.mp4' INTO MyVideo;`,
			`CREATE FUNCTION Color IMPL './c.py';`,
			`CREATE FUNCTION Velocity IMPL './v.py';`,
			`CREATE TABLE T AS
			   SELECT id, data, Color(Crop(data, bbox)) AS color, T.iid, T.bbox, T.label
			   FROM MyVideo
			   JOIN LATERAL UNNEST(EXTRACT_OBJECT(data, Yolo, NorFairTracker))
			   AS T(iid, label, bbox, score);`,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e, env, v
	}
	e1, env1, _ := mkEngine()
	before1 := env1.Clock.Account("eva:velocity")
	if _, err := e1.Exec(`SELECT id FROM T WHERE Velocity(bbox, bbox) >= 0 AND color = 'red';`); err != nil {
		t.Fatal(err)
	}
	velFirst := env1.Clock.Account("eva:velocity") - before1

	e2, env2, _ := mkEngine()
	before2 := env2.Clock.Account("eva:velocity")
	if _, err := e2.Exec(`SELECT id FROM T WHERE color = 'red' AND Velocity(bbox, bbox) >= 0;`); err != nil {
		t.Fatal(err)
	}
	velLast := env2.Clock.Account("eva:velocity") - before2
	if velLast >= velFirst {
		t.Errorf("WHERE short-circuit not order-sensitive: first=%.2f last=%.2f", velFirst, velLast)
	}
}

func TestHashJoin(t *testing.T) {
	e, _ := testEngine()
	e.tables["a"] = &Table{Name: "a", Rows: []Row{
		{"id": 1.0, "x": "p"}, {"id": 2.0, "x": "q"}, {"id": 3.0, "x": "r"},
	}}
	e.tables["b"] = &Table{Name: "b", Rows: []Row{
		{"id": 2.0, "y": "Y2"}, {"id": 3.0, "y": "Y3"}, {"id": 9.0, "y": "Y9"},
	}}
	res, err := e.Exec(`SELECT a.x, b.y FROM a JOIN b ON a.id = b.id;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("join rows = %d, want 2: %v", len(res.Rows), res.Rows)
	}
	// Join with residual condition.
	res, err = e.Exec(`SELECT a.x FROM a JOIN b ON a.id = b.id AND b.y != 'Y2';`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("residual join rows = %d, want 1", len(res.Rows))
	}
	// Non-equi join falls back to nested loop.
	res, err = e.Exec(`SELECT a.x FROM a JOIN b ON a.id < b.id;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // (1,2)(1,3)(1,9)(2,3)(2,9)(3,9)
		t.Errorf("non-equi join rows = %d, want 6", len(res.Rows))
	}
}

func TestMultiColumnUDFSplat(t *testing.T) {
	e, _ := testEngine()
	e.tables["t"] = &Table{Name: "t", Rows: []Row{
		{"id": 1.0, "iid": 5.0, "bbox": geom.Rect(0, 0, 10, 10)},
	}}
	res, err := e.Exec(`SELECT Add1(id, iid, bbox) FROM t;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatal("no rows")
	}
	r := res.Rows[0]
	if r["added_id"] != 2.0 || r["cur_iid"] != 5.0 {
		t.Errorf("Add1 splat wrong: %v", r)
	}
	if _, ok := r["last_bbox"].(geom.BBox); !ok {
		t.Errorf("last_bbox missing: %v", r)
	}
}

func TestErrorPaths(t *testing.T) {
	e, _ := testEngine()
	cases := []string{
		`SELECT a FROM missing;`,
		`SELECT missingcol FROM t2;`,
		`SELECT MissingFn(1) FROM t2;`,
		`DROP TABLE missing;`,
		`DROP FUNCTION missing;`,
		`CREATE FUNCTION NoImpl IMPL './x.py';`,
	}
	e.tables["t2"] = &Table{Name: "t2", Rows: []Row{{"a": 1.0}}}
	for _, src := range cases {
		if _, err := e.Exec(src); err == nil {
			t.Errorf("%q accepted", src)
		}
	}
	// IF EXISTS suppresses.
	if _, err := e.Exec(`DROP TABLE IF EXISTS missing;`); err != nil {
		t.Errorf("IF EXISTS failed: %v", err)
	}
}

func TestApplyBinOp(t *testing.T) {
	cases := []struct {
		op   string
		l, r any
		want any
	}{
		{"+", 1.0, 2.0, 3.0},
		{"-", 5.0, 2.0, 3.0},
		{"=", 1.0, 1.0, true},
		{"!=", 1.0, 2.0, true},
		{">", 2.0, 1.0, true},
		{"<=", 2.0, 2.0, true},
		{"=", "a", "a", true},
		{"!=", "a", "b", true},
	}
	for _, c := range cases {
		got, err := applyBinOp(c.op, c.l, c.r)
		if err != nil || got != c.want {
			t.Errorf("applyBinOp(%q, %v, %v) = %v, %v", c.op, c.l, c.r, got, err)
		}
	}
	if _, err := applyBinOp(">", "a", 1.0); err == nil {
		t.Error("mixed-type > accepted")
	}
	// Cross-type equality falls back to string form.
	got, err := applyBinOp("=", 1.0, "1")
	if err != nil || got != true {
		t.Errorf("fallback equality = %v, %v", got, err)
	}
}

func TestTruthy(t *testing.T) {
	if truthy(false) || truthy(0.0) || truthy("") || truthy(nil) {
		t.Error("falsy values wrong")
	}
	if !truthy(true) || !truthy(1.0) || !truthy("x") || !truthy(geom.BBox{}) {
		t.Error("truthy values wrong")
	}
}

func TestExprString(t *testing.T) {
	st, err := Parse(`SELECT a FROM t WHERE Color(Crop(data, bbox)) = 'red' AND t.x > 1;`)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*Select)
	s := exprString(sel.Where)
	for _, want := range []string{"color(crop(data, bbox))", "'red'", "t.x"} {
		if !strings.Contains(s, want) {
			t.Errorf("exprString = %q missing %q", s, want)
		}
	}
}
