package sqlbase

import (
	"fmt"
	"strings"

	"vqpy/internal/geom"
	"vqpy/internal/models"
	"vqpy/internal/track"
	"vqpy/internal/video"
)

// lateralOutputCols is the canonical column order of EXTRACT_OBJECT
// output, consumed positionally by the AS T(iid, label, bbox, score)
// clause.
var lateralOutputCols = []string{"iid", "label", "bbox", "score"}

// detectorAliases maps the model names used in the paper's SQL to zoo
// models.
var detectorAliases = map[string]string{
	"yolo":    "yolox",
	"yolov8m": "yolov8m",
	"yolox":   "yolox",
}

// extractObject implements EXTRACT_OBJECT(data, <detector>, <tracker>):
// it runs the detector on the frame and associates detections with the
// lateral clause's tracker (EVA's NorFairTracker binding), producing one
// row per tracked object.
func extractObject(env *models.Env, lctx *lateralCtx, args []any) ([]Row, error) {
	if len(args) != 3 {
		return nil, fmt.Errorf("sqlbase: EXTRACT_OBJECT expects 3 arguments, got %d", len(args))
	}
	frame, ok := args[0].(*video.Frame)
	if !ok {
		return nil, fmt.Errorf("sqlbase: EXTRACT_OBJECT first argument must be frame data")
	}
	detName, _ := args[1].(string)
	if mapped, ok := detectorAliases[strings.ToLower(detName)]; ok {
		detName = mapped
	}
	det, err := lctx.engine.registry.Detector(detName)
	if err != nil {
		return nil, err
	}
	if lctx.tracker == nil {
		// Greedy association mirrors norfair's default matching.
		lctx.tracker = track.NewTracker(track.Config{Greedy: true, ConfirmHits: 1, IoUGate: 0.1})
	}
	raw := det.Detect(env, frame)
	dets := make([]track.Detection, len(raw))
	for i, d := range raw {
		dets[i] = track.Detection{Box: d.Box, Class: int(d.Class), Score: d.Score, Ref: d}
	}
	var rows []Row
	for _, tr := range lctx.tracker.Update(dets) {
		if tr.Misses != 0 {
			continue // only objects present on this frame
		}
		d, ok := tr.Ref.(models.Detection)
		if !ok {
			continue
		}
		rows = append(rows, Row{
			"iid":   float64(tr.ID),
			"label": video.Class(tr.Class).String(),
			"bbox":  d.Box,
			"score": d.Score,
			// truth_id is carried for evaluation only (never exposed
			// through the AS clause's positional columns).
			"truth_id": d.TruthID,
		})
	}
	return rows, nil
}

// cropUDF implements Crop(data, bbox): it returns a crop handle carrying
// the frame and box, charged at image-slicing cost.
func cropUDF(env *models.Env, args []any) (any, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("sqlbase: Crop expects 2 arguments")
	}
	frame, ok := args[0].(*video.Frame)
	if !ok {
		return nil, fmt.Errorf("sqlbase: Crop first argument must be frame data")
	}
	box, ok := args[1].(geom.BBox)
	if !ok {
		return nil, fmt.Errorf("sqlbase: Crop second argument must be a bbox")
	}
	env.Clock.Charge("eva:crop", costCropMS)
	return cropHandle{frame: frame, box: box}, nil
}

// cropHandle is the value produced by Crop and consumed by Color.
type cropHandle struct {
	frame *video.Frame
	box   geom.BBox
}

// ColorUDF builds the Color(crop) scalar UDF around the zoo's color
// classifier (the paper wrapped the same CVIP color model for EVA). The
// per-row model cost is charged by the classifier itself.
func ColorUDF(registry *models.Registry) UDF {
	// Rows arrive frame-ordered, so a single-frame raster cache avoids
	// re-rendering per crop (EVA likewise holds the decoded frame).
	var lastFrame *video.Frame
	var lastRaster *video.Raster
	return func(env *models.Env, args []any) (any, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("sqlbase: Color expects 1 argument")
		}
		crop, ok := args[0].(cropHandle)
		if !ok {
			return nil, fmt.Errorf("sqlbase: Color expects a Crop() value")
		}
		cls, err := registry.Classifier("color_detect")
		if err != nil {
			return nil, err
		}
		if crop.frame != lastFrame {
			lastFrame = crop.frame
			lastRaster = crop.frame.Render()
		}
		// EVA has no object identity, so the truth link rides on the
		// crop for the simulated classifier's noise channel only.
		truthID := truthIDForBox(crop.frame, crop.box)
		return cls.Classify(env, crop.frame, lastRaster, crop.box, truthID), nil
	}
}

// truthIDForBox finds the ground-truth object best matching a box; used
// only to key simulated model noise, never exposed to queries.
func truthIDForBox(f *video.Frame, box geom.BBox) int {
	best, bestIoU := -1, 0.2
	for _, o := range f.Objects {
		if iou := geom.IoU(o.Box, box); iou > bestIoU {
			best, bestIoU = o.TrackID, iou
		}
	}
	return best
}

// VelocityUDF builds Velocity(bbox, last_bbox): centroid displacement in
// pixels per frame.
func VelocityUDF() UDF {
	return func(env *models.Env, args []any) (any, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("sqlbase: Velocity expects 2 arguments")
		}
		cur, ok1 := args[0].(geom.BBox)
		last, ok2 := args[1].(geom.BBox)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("sqlbase: Velocity expects two bboxes")
		}
		env.Clock.Charge("eva:velocity", 0.05)
		return geom.CenterDist(cur, last), nil
	}
}

// Add1UDF builds Add1(id, iid, bbox): the paper's lag helper, producing
// (added_id = id+1, cur_iid = iid, last_bbox = bbox) so a self-join
// aligns each row with the same object one frame later.
func Add1UDF() UDF {
	return func(env *models.Env, args []any) (any, error) {
		if len(args) != 3 {
			return nil, fmt.Errorf("sqlbase: Add1 expects 3 arguments")
		}
		id, ok := toFloat(args[0])
		if !ok {
			return nil, fmt.Errorf("sqlbase: Add1 id must be numeric")
		}
		env.Clock.Charge("eva:add1", 0.02)
		return Row{"added_id": id + 1, "cur_iid": args[1], "last_bbox": args[2]}, nil
	}
}

// DistinctCount returns the number of distinct values in a column,
// the aggregation the benchmarks use to count matched objects.
func (t *Table) DistinctCount(col string) int {
	seen := make(map[string]bool)
	for _, r := range t.Rows {
		if v, ok := r[col]; ok {
			seen[fmt.Sprint(v)] = true
		}
	}
	return len(seen)
}

// FrameSet returns the set of frame ids present in a column.
func (t *Table) FrameSet(col string) map[int]bool {
	out := make(map[int]bool)
	for _, r := range t.Rows {
		if v, ok := r[col]; ok {
			if f, isNum := toFloat(v); isNum {
				out[int(f)] = true
			}
		}
	}
	return out
}
