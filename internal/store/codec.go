package store

// On-disk record format. Each tier's log file is a sequence of
// independently decodable records:
//
//	[4-byte big-endian blob length][4-byte CRC32 (IEEE) of blob][gob blob]
//
// Every blob is produced by a fresh gob.Encoder, so a record can be
// decoded knowing only its offset — no stream state is shared between
// records, which is what allows the disk tier to serve random reads and
// the opener to skip corrupt records instead of abandoning the file.
//
// Values stored through the `any`-typed label channel are restricted to
// the concrete types the simulated model zoo emits (strings, numbers,
// float slices); see gobSafe. Unknown types are silently not persisted —
// the store is a cache, and a value it cannot carry is simply recomputed.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"vqpy/internal/geom"
)

// Detection is the store's detector-output row: track.Detection with the
// caller-opaque Ref pinned down to the ground-truth id the simulated
// models thread through it. Persisting the concrete field (instead of an
// `any`) keeps gob round trips type-exact, which the bit-identity
// contract depends on.
type Detection struct {
	// Box is the detected bounding box.
	Box geom.BBox
	// Class is the tracker-level integer class label.
	Class int
	// Score is the detection confidence.
	Score float64
	// TruthID is the ground-truth object id carried through Ref on the
	// live path (the simulated models' noise key).
	TruthID int
}

// DetRecord persists one detector invocation: the raw output of running
// a detect model over one frame of one source. Keyed by (source, model,
// frame) — detector output does not depend on which frame filters or
// queries surround it, so one record serves every scan group and every
// per-query stream that needs this (model, frame).
type DetRecord struct {
	// Source names the video / camera stream.
	Source string
	// Model is the detector model name.
	Model string
	// Frame is the frame index within the source.
	Frame int
	// Dets is the raw detector output, all classes.
	Dets []Detection
}

// ScanRecord persists one scan group's per-frame outcome: whether the
// frame survived the group's frame-filter chain and, per tracked class,
// the track ids the shared tracker assigned. Keyed by (source, scan-group
// signature, frame) — the signature (exec.ScanSig.Key: ordered filter
// chain + detector) participates because tracker state depends on
// exactly which frames reach it.
//
// IDs[class] is parallel to the class-filtered subsequence of the
// frame's DetRecord detections, the same shape the live shared tracker
// produces. Detections themselves live in DetRecord; a ScanRecord
// without its DetRecord is unusable and treated as a miss.
type ScanRecord struct {
	// Source names the video / camera stream.
	Source string
	// ScanKey is the scan-group signature (filter chain + detector).
	ScanKey string
	// Detect echoes the detector model, the invalidation check: a plan
	// whose chosen model differs from what was persisted must not reuse
	// the record (the key already separates them; the field makes the
	// rule checkable and survives key-scheme changes).
	Detect string
	// Frame is the frame index within the source.
	Frame int
	// Dropped reports that the frame-filter chain dropped the frame (no
	// detector ran; IDs is empty).
	Dropped bool
	// IDs maps class → per-detection track ids, parallel to the
	// class-filtered detections of the frame's DetRecord. -1 marks a
	// detection the tracker did not match on this frame.
	IDs map[int][]int
}

// LabelRecord persists one per-crop model invocation (classifier,
// embedder, OCR): the evaluated VObj property value. Keyed exactly like
// the in-process SharedCache label key — (source, model, frame,
// quantized box, ground-truth id) — so a store hit observes the same
// value the live model would have produced.
type LabelRecord struct {
	// Source names the video / camera stream.
	Source string
	// Model is the property model name.
	Model string
	// Frame is the frame index within the source.
	Frame int
	// X1, Y1, X2, Y2 are the quantized crop-box coordinates.
	X1, Y1, X2, Y2 int
	// TruthID is the ground-truth object id (the models' noise key).
	TruthID int
	// Value is the model output; see gobSafe for the carried types.
	Value any
}

func init() {
	// Concrete types that may travel through LabelRecord.Value. The
	// simulated zoo emits strings (classifiers, OCR) and float slices
	// (embedders); numbers and bools cover cheap user-registered models.
	gob.Register("")
	gob.Register(float64(0))
	gob.Register(int(0))
	gob.Register(false)
	gob.Register([]float64(nil))
	gob.Register(geom.BBox{})
}

// gobSafe reports whether a label value is of a type the store knows how
// to persist and round-trip exactly.
func gobSafe(v any) bool {
	switch v.(type) {
	case string, float64, int, bool, []float64, geom.BBox, nil:
		return true
	}
	return false
}

// maxRecordBytes bounds a single record blob. Anything larger in the
// length header is treated as corruption (frames carry at most a few
// dozen detections; real records are well under a kilobyte).
const maxRecordBytes = 32 << 20

// recordHeaderBytes is the fixed framing prefix: length + CRC.
const recordHeaderBytes = 8

// encodeRecord frames one gob-encoded value for the log.
func encodeRecord(v any) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(v); err != nil {
		return nil, err
	}
	blob := body.Bytes()
	out := make([]byte, recordHeaderBytes+len(blob))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(blob)))
	binary.BigEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(blob))
	copy(out[recordHeaderBytes:], blob)
	return out, nil
}

// decodeRecord decodes one framed blob into v, verifying the CRC.
func decodeRecord(blob []byte, crc uint32, v any) error {
	if crc32.ChecksumIEEE(blob) != crc {
		return fmt.Errorf("store: record checksum mismatch")
	}
	return gob.NewDecoder(bytes.NewReader(blob)).Decode(v)
}

// readHeader reads one record header at off. io.EOF (clean end) and
// io.ErrUnexpectedEOF (truncated header) are returned unwrapped so the
// opener can distinguish them from decode failures.
func readHeader(r io.ReaderAt, off int64) (length uint32, crc uint32, err error) {
	var hdr [recordHeaderBytes]byte
	n, err := r.ReadAt(hdr[:], off)
	if n == 0 && err == io.EOF {
		return 0, 0, io.EOF
	}
	if n < recordHeaderBytes {
		return 0, 0, io.ErrUnexpectedEOF
	}
	return binary.BigEndian.Uint32(hdr[0:4]), binary.BigEndian.Uint32(hdr[4:8]), nil
}
