package store

// Corruption-recovery under concurrency: a store that truncated a torn
// tail and CRC-skipped a poisoned record at open must serve the
// surviving log correctly while pinned readers, plain readers and
// writers race against the hot tier's eviction pressure. Run under
// -race (CI does).

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestCorruptionRecoveryUnderPinnedReaders seeds a log, poisons one
// record's payload (bad CRC) and tears the tail, then reopens with a
// tiny hot tier and hammers the recovered store from goroutines that
// hold GetScanRef pins across other reads and writes.
func TestCorruptionRecoveryUnderPinnedReaders(t *testing.T) {
	const frames = 48
	dir := t.TempDir()
	s := openTest(t, dir, 11, 8)
	for f := 0; f < frames; f++ {
		if err := s.PutScan(scanRec("cam", "sig", f)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Poison record 0's payload in place (framing intact → CRC skip at
	// open) and append a torn tail (framing garbage → truncation).
	path := filepath.Join(dir, "scans.log")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[recordHeaderBytes+2] ^= 0xFF
	blob = append(blob, 0xde, 0xad, 0xbe)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, 11, 8)
	defer s2.Close()
	if got := s2.TierStats().CorruptRecords; got != 2 {
		t.Fatalf("corrupt records at open = %d, want 2 (one CRC skip + one torn tail)", got)
	}
	if len(s2.Warnings()) < 2 {
		t.Fatalf("warnings = %v, want CRC-skip and torn-tail entries", s2.Warnings())
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for f := 1; f < frames; f++ {
				switch (f + g) % 3 {
				case 0:
					// Pinned read: hold the ref across sibling reads so the
					// evictor must skip it while writers churn the hot tier.
					rec, release, ok := s2.GetScanRef("cam", "sig", f)
					if !ok {
						t.Errorf("goroutine %d: surviving frame %d unreadable", g, f)
						return
					}
					if got, ok := s2.GetScan("cam", "sig", (f%(frames-1))+1); !ok || got == nil {
						t.Errorf("goroutine %d: read under pin failed at %d", g, f)
						release()
						return
					}
					if rec.Frame != f {
						t.Errorf("goroutine %d: pinned frame %d decoded as %d", g, f, rec.Frame)
					}
					release()
				case 1:
					if _, ok := s2.GetScan("cam", "sig", f); !ok {
						t.Errorf("goroutine %d: surviving frame %d unreadable", g, f)
						return
					}
				case 2:
					// Fresh appends keep eviction pressure on the pins and
					// prove the recovered log accepts writes.
					if err := s2.PutScan(scanRec("cam", fmt.Sprintf("sig%d", g), frames+f)); err != nil {
						t.Errorf("goroutine %d: append after recovery: %v", g, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if _, ok := s2.GetScan("cam", "sig", 0); ok {
		t.Error("CRC-poisoned record served after recovery")
	}
	for f := 1; f < frames; f++ {
		if got, ok := s2.GetScan("cam", "sig", f); !ok || got.Frame != f {
			t.Fatalf("surviving frame %d lost after concurrent churn: %+v, %v", f, got, ok)
		}
	}
	if st := s2.TierStats(); st.Evicted == 0 {
		t.Errorf("stats = %+v: churn was supposed to force evictions", st)
	}
}

// TestWriteFaultDegradesTierUnderConcurrency: a write fault mid-churn
// degrades just the scans tier to memory-only — appends stop, puts
// install in the hot tier only, sibling tiers stay durable — without
// racing or failing the writers.
func TestWriteFaultDegradesTierUnderConcurrency(t *testing.T) {
	var mu sync.Mutex
	writes := 0
	opts := Options{
		MemRecords: 256,
		WriteFault: func(kind string) error {
			if kind != "scans" {
				return nil
			}
			mu.Lock()
			defer mu.Unlock()
			writes++
			if writes > 4 {
				return errors.New("injected: disk full")
			}
			return nil
		},
	}
	s, err := Open(t.TempDir(), Meta{Seed: 3}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const goroutines = 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for f := 0; f < 40; f++ {
				if err := s.PutScan(scanRec("cam", fmt.Sprintf("sig%d", g), f)); err != nil {
					t.Errorf("goroutine %d: PutScan must absorb the write fault, got %v", g, err)
					return
				}
				if got, ok := s.GetScan("cam", fmt.Sprintf("sig%d", g), f); !ok || got.Frame != f {
					t.Errorf("goroutine %d: mem-only record %d unreadable right after put", g, f)
					return
				}
				if err := s.PutDets("cam", "yolox", f, []Detection{{Score: 0.5}}); err != nil {
					t.Errorf("goroutine %d: healthy dets tier failed: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := s.TierStats()
	if st.MemOnlyTiers != 1 {
		t.Fatalf("MemOnlyTiers = %d, want 1 (scans only)", st.MemOnlyTiers)
	}
	if st.ScanRecords > 4 {
		t.Errorf("durable scan records = %d, want <= 4 (appends stopped at degrade)", st.ScanRecords)
	}
	if st.DetRecords == 0 {
		t.Error("dets tier should have stayed durable")
	}
	if got := s.Counters().Get("tier_degraded_mem_only"); got != 1 {
		t.Errorf("tier_degraded_mem_only = %d, want 1", got)
	}
	if got := s.Counters().Get("scan_write_failures"); got == 0 {
		t.Error("scan_write_failures counter not bumped")
	}
	if got := s.Counters().Get("scan_puts_mem_only"); got == 0 {
		t.Error("scan_puts_mem_only counter not bumped")
	}
}

// TestReadFaultServedAsMissUnderConcurrency: injected disk-read faults
// surface as misses (the engine recomputes), never as errors or stale
// data, even while writers keep appending.
func TestReadFaultServedAsMissUnderConcurrency(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 5, 4) // tiny hot tier: most reads must go to disk
	for f := 0; f < 32; f++ {
		if err := s.PutScan(scanRec("cam", "sig", f)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	fail := true
	s2, err := Open(dir, Meta{Seed: 5}, Options{
		MemRecords: 4,
		ReadFault: func(kind string) error {
			if fail {
				return errors.New("injected: read error")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	var wg sync.WaitGroup
	misses := make([]int, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for f := 0; f < 32; f++ {
				if _, ok := s2.GetScan("cam", "sig", f); !ok {
					misses[g]++
				}
			}
		}(g)
	}
	wg.Wait()

	total := 0
	for _, m := range misses {
		total += m
	}
	if total == 0 {
		t.Fatal("read faults never surfaced as misses (hot tier too large?)")
	}
	if got := s2.TierStats().FaultedReads; got == 0 {
		t.Error("FaultedReads stat not bumped")
	}
	if got := s2.Counters().Get("scan_faulted_reads"); got == 0 {
		t.Error("scan_faulted_reads counter not bumped")
	}

	// Lift the fault: everything durable is readable again.
	fail = false
	for f := 0; f < 32; f++ {
		if got, ok := s2.GetScan("cam", "sig", f); !ok || got.Frame != f {
			t.Fatalf("frame %d unreadable after faults lifted: %+v, %v", f, got, ok)
		}
	}
}
