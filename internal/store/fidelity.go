package store

// The per-source fidelity manifest (DESIGN.md §12): one entry per
// (source, fidelity) a scan has been archived at, recording the
// decorated scan signature the records live under, how many frames the
// archive covers and the calibrated accuracy / cost-per-frame the
// fidelity planner's cost model consults. The manifest is small (a
// handful of entries per source), so it is kept wholly in memory and
// rewritten as one JSON file on every upsert — no log framing needed —
// and it shares the store's identity rules: it is removed on manifest
// invalidation and its writes flow through the injectable write-fault
// hook ("fidelity" kind), degrading to memory-only on failure exactly
// like the log tiers.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// fidelityName is the fidelity manifest file inside the store directory.
const fidelityName = "fidelity.json"

// FidelityEntry records one archived fidelity of one source.
type FidelityEntry struct {
	// Source is the stream the archive covers.
	Source string `json:"source"`
	// Key is the canonical fidelity name (video.Fidelity.Key()).
	Key string `json:"key"`
	// ScanKey is the decorated scan-group signature the tier's scan
	// records are archived under (exec.ScanSig.Key() with the fidelity
	// suffix).
	ScanKey string `json:"scan_key"`
	// Detector is the tier's detector model (the dets-tier key).
	Detector string `json:"detector"`
	// Stride / Res describe the scan config for display and planning.
	Stride int    `json:"stride"`
	Res    string `json:"res"`
	// Covered means frames [0, Covered) are archived (the stride-aligned
	// ones among them).
	Covered int `json:"covered"`
	// Accuracy is the calibrated per-frame verdict agreement with the
	// full-fidelity scan over the archived window, in [0, 1].
	Accuracy float64 `json:"accuracy"`
	// CostPerFrameMS is the estimated full-fidelity virtual cost per
	// frame this tier substitutes for (the planner's live-scan unit).
	CostPerFrameMS float64 `json:"cost_per_frame_ms"`
}

// loadFidelity reads the fidelity manifest at open. A missing file is
// an empty manifest; an unreadable one is dropped with a warning (the
// manifest is derived state — the archive re-calibrates).
func (s *Store) loadFidelity() {
	blob, err := os.ReadFile(filepath.Join(s.dir, fidelityName))
	if err != nil {
		return
	}
	var entries []FidelityEntry
	if err := json.Unmarshal(blob, &entries); err != nil {
		s.counters.Add("fidelity_corrupt", 1)
		s.warnings = append(s.warnings, fmt.Sprintf(
			"store: %s: fidelity manifest unreadable (%v); starting empty", s.dir, err))
		return
	}
	s.fidelity = entries
}

// PutFidelity upserts one fidelity entry (keyed by Source+Key) and
// rewrites the manifest file. A write fault degrades the manifest to
// memory-only for the rest of the process — the entry still serves
// this session's planner, only cross-process reuse is lost.
func (s *Store) PutFidelity(e FidelityEntry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: fidelity put on closed store")
	}
	replaced := false
	for i := range s.fidelity {
		if s.fidelity[i].Source == e.Source && s.fidelity[i].Key == e.Key {
			s.fidelity[i] = e
			replaced = true
			break
		}
	}
	if !replaced {
		s.fidelity = append(s.fidelity, e)
	}
	s.counters.Add("fidelity_puts", 1)
	if s.fidelityMemOnly {
		s.counters.Add("fidelity_puts_mem_only", 1)
		return nil
	}
	var err error
	if s.writeFault != nil {
		err = s.writeFault("fidelity")
	}
	if err == nil {
		var blob []byte
		if blob, err = json.MarshalIndent(s.fidelity, "", "  "); err == nil {
			err = os.WriteFile(filepath.Join(s.dir, fidelityName), append(blob, '\n'), 0o644)
		}
	}
	if err != nil {
		s.counters.Add("fidelity_write_failures", 1)
		s.fidelityMemOnly = true
		s.counters.Add("tier_degraded_mem_only", 1)
		s.warnings = append(s.warnings, fmt.Sprintf(
			"store: fidelity: write failed (%v); manifest degraded to memory-only", err))
	}
	return nil
}

// Fidelities returns the manifest entries for one source, sorted by
// fidelity key for deterministic iteration. The slice is a copy.
func (s *Store) Fidelities(source string) []FidelityEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []FidelityEntry
	for _, e := range s.fidelity {
		if e.Source == source {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
