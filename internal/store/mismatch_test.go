package store

// Satellite hardening: the manifest mismatch diagnostic must name the
// offending field with both the expected and the found value — "store
// invalidated" with no reason was unactionable in production triage.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMetaMismatchNamesOffendingFields(t *testing.T) {
	want := Meta{Version: 1, Seed: 42}
	cases := []struct {
		name     string
		blob     string
		contains []string
		clean    bool
	}{
		{
			name:  "matching manifest",
			blob:  `{"Version":1,"Seed":42}`,
			clean: true,
		},
		{
			name:     "version mismatch",
			blob:     `{"Version":9,"Seed":42}`,
			contains: []string{"version", "found 9", "expected 1"},
		},
		{
			name:     "seed mismatch",
			blob:     `{"Version":1,"Seed":7}`,
			contains: []string{"seed", "found 7", "expected 42"},
		},
		{
			name: "both mismatch",
			blob: `{"Version":9,"Seed":7}`,
			contains: []string{
				"version", "found 9", "expected 1",
				"seed", "found 7", "expected 42",
			},
		},
		{
			name:     "garbage manifest",
			blob:     `{not json`,
			contains: []string{"unreadable"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reason := metaMismatch([]byte(tc.blob), want)
			if tc.clean {
				if reason != "" {
					t.Fatalf("matching manifest reported %q", reason)
				}
				return
			}
			if reason == "" {
				t.Fatalf("mismatch not detected")
			}
			for _, frag := range tc.contains {
				if !strings.Contains(reason, frag) {
					t.Fatalf("reason %q missing %q", reason, frag)
				}
			}
		})
	}
}

// TestOpenMismatchWarningCarriesFieldDetail pins the integration: a
// reopen under a different identity surfaces the field-level reason in
// the store warnings, not just the invalidation counter.
func TestOpenMismatchWarningCarriesFieldDetail(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 42, 16)
	if err := s.PutScan(scanRec("cam", "sig", 0)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openTest(t, dir, 43, 16)
	defer s2.Close()
	if s2.Counters().Get("invalidated") != 1 {
		t.Fatal("expected invalidation")
	}
	found := false
	for _, w := range s2.Warnings() {
		if strings.Contains(w, "seed found 42, expected 43") {
			found = true
		}
	}
	if !found {
		t.Fatalf("warnings lack field detail: %v", s2.Warnings())
	}
}

// TestInvalidationRemovesFidelityManifest: the fidelity manifest
// shares the store's identity rules — records calibrated under another
// seed must not price this seed's planner.
func TestInvalidationRemovesFidelityManifest(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 42, 16)
	if err := s.PutFidelity(FidelityEntry{
		Source: "cam", Key: "s2/half/yolov8m@half", ScanKey: "|yolov8m@half@s2/half/yolov8m@half",
		Detector: "yolov8m@half", Stride: 2, Res: "half", Covered: 100, Accuracy: 0.93, CostPerFrameMS: 20,
	}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := os.Stat(filepath.Join(dir, fidelityName)); err != nil {
		t.Fatalf("fidelity manifest not persisted: %v", err)
	}

	s2 := openTest(t, dir, 7, 16)
	defer s2.Close()
	if got := s2.Fidelities("cam"); len(got) != 0 {
		t.Fatalf("fidelity entries survived invalidation: %+v", got)
	}
	if _, err := os.Stat(filepath.Join(dir, fidelityName)); !os.IsNotExist(err) {
		t.Fatalf("fidelity manifest file survived invalidation (err=%v)", err)
	}
}

// TestFidelityManifestRoundTrip covers the manifest's persistence and
// upsert semantics across reopen.
func TestFidelityManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 42, 16)
	e := FidelityEntry{
		Source: "cam", Key: "s4/quarter/yolov5s@quarter", ScanKey: "|yolov5s@quarter@s4/quarter/yolov5s@quarter",
		Detector: "yolov5s@quarter", Stride: 4, Res: "quarter", Covered: 60, Accuracy: 0.8, CostPerFrameMS: 25,
	}
	if err := s.PutFidelity(e); err != nil {
		t.Fatal(err)
	}
	// Upsert: same (source, key) replaces, it does not duplicate.
	e.Covered, e.Accuracy = 240, 0.85
	if err := s.PutFidelity(e); err != nil {
		t.Fatal(err)
	}
	if st := s.TierStats(); st.FidelityEntries != 1 {
		t.Fatalf("FidelityEntries = %d, want 1", st.FidelityEntries)
	}
	s.Close()

	s2 := openTest(t, dir, 42, 16)
	defer s2.Close()
	got := s2.Fidelities("cam")
	if len(got) != 1 || got[0] != e {
		t.Fatalf("after reopen: %+v, want %+v", got, e)
	}
	if got := s2.Fidelities("other"); len(got) != 0 {
		t.Fatalf("entries leaked across sources: %+v", got)
	}
}

// TestFidelityManifestCorruptStartsEmpty: an unreadable manifest is
// derived state — the open succeeds with a warning and an empty
// manifest rather than failing the store.
func TestFidelityManifestCorruptStartsEmpty(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 42, 16)
	s.Close()
	// Valid store, garbage fidelity manifest.
	if err := os.WriteFile(filepath.Join(dir, fidelityName), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, 42, 16)
	defer s2.Close()
	if got := s2.Fidelities("cam"); len(got) != 0 {
		t.Fatalf("corrupt manifest served entries: %+v", got)
	}
	if s2.Counters().Get("fidelity_corrupt") != 1 {
		t.Fatal("expected fidelity_corrupt counter")
	}
	// And a healthy manifest round-trips as JSON (guards the file shape
	// against accidental framing changes).
	if err := s2.PutFidelity(FidelityEntry{Source: "cam", Key: "k", ScanKey: "sk", Detector: "d", Stride: 2, Res: "half"}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, fidelityName))
	if err != nil {
		t.Fatal(err)
	}
	var entries []FidelityEntry
	if err := json.Unmarshal(blob, &entries); err != nil {
		t.Fatalf("manifest not valid JSON: %v", err)
	}
}
