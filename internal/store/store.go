// Package store is the tiered, persistent result store of the archival
// analytics layer: per-frame detector outputs, shared-tracker id
// assignments and evaluated VObj property values, keyed by (source,
// frame, scan-group signature) and surviving the process. A bounded
// in-memory LRU tier serves the hot set; an append-only on-disk log with
// CRC-framed gob records is the archival tier (see DESIGN.md §7 for the
// layout and the bit-identity rules).
//
// The store is what turns the engine's within-pass sharing (MuxStream)
// into cross-pass and cross-process reuse: a second scan over the same
// source replays persisted detections and track ids at zero model cost,
// and a query attaching mid-stream can backfill the frames it missed
// (exec.MuxStream.AttachBackfill) with results bit-identical to having
// been present from frame zero.
//
// Correctness rests on the same determinism contract as every other
// reuse layer (DESIGN.md §2): model outputs are pure functions of
// (seed, model, frame, object), so a persisted value equals what the
// live model would produce — provided the seed matches. The manifest
// records the seed; opening a store written under a different seed (or
// format version) invalidates it rather than serving wrong values, and
// a plan whose chosen model differs from what was persisted misses by
// key construction (the scan signature and label keys embed the model).
//
// The store is safe for concurrent use; all operations serialize behind
// one mutex (records are small and reads are index lookups, so the lock
// is never held across model work).
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"strings"

	"vqpy/internal/geom"
	"vqpy/internal/metrics"
)

// FormatVersion identifies the on-disk layout; stores written by other
// versions are invalidated at open.
const FormatVersion = 1

// DefaultMemRecords is the default hot-tier capacity per record kind.
const DefaultMemRecords = 4096

// Meta is the store manifest: the identity a persisted result is only
// valid under.
type Meta struct {
	// Version is the on-disk format version.
	Version int `json:"version"`
	// Seed is the session seed the records were computed under. Model
	// outputs are functions of the seed, so records from another seed
	// are not merely stale — they are wrong — and force invalidation.
	Seed uint64 `json:"seed"`
}

// Options tunes a store.
type Options struct {
	// MemRecords caps the in-memory tier, per record kind (scan / det /
	// label). 0 uses DefaultMemRecords.
	MemRecords int

	// WriteFault, when set, is consulted before every disk append (the
	// chaos layer's injectable store write hook; kind is the tier name).
	// An error fails the append: the record is installed memory-only and
	// the tier degrades to memory-only mode — correct by the cache
	// contract (recomputing is always right), losing only cross-process
	// reuse. Counters: <kind>_write_failures, tier_degraded_mem_only,
	// <kind>_puts_mem_only.
	WriteFault func(kind string) error
	// ReadFault, when set, is consulted before every disk-tier read; an
	// error is served as a miss (counter <kind>_faulted_reads) and the
	// engine recomputes. Hot-tier (memory) hits are unaffected.
	ReadFault func(kind string) error
}

// Store is a tiered persistent result store over one directory.
type Store struct {
	mu   sync.Mutex
	dir  string
	meta Meta

	scans  *tier // ScanRecord:  source ⨯ scan signature ⨯ frame
	dets   *tier // DetRecord:   source ⨯ detector model ⨯ frame
	labels *tier // LabelRecord: source ⨯ model ⨯ frame ⨯ box ⨯ object

	counters   *metrics.Counters
	warnings   []string
	closed     bool
	writeFault func(kind string) error

	// fidelity is the per-source fidelity manifest (fidelity.go): which
	// scan configs each source has been archived at, with calibrated
	// accuracy and cost. fidelityMemOnly is the manifest's write-fault
	// degradation flag, mirroring the log tiers'.
	fidelity        []FidelityEntry
	fidelityMemOnly bool
}

// manifestName is the manifest file inside the store directory.
const manifestName = "manifest.json"

// Open opens (creating if needed) the store rooted at dir for sessions
// seeded with meta.Seed. A directory written under a different seed or
// format version is invalidated: its logs are removed and the store
// starts empty (counter "invalidated"). Corrupt log records are skipped
// with a warning (counter "corrupt_records", Warnings) instead of
// poisoning reads.
func Open(dir string, meta Meta, opts Options) (*Store, error) {
	if meta.Version == 0 {
		meta.Version = FormatVersion
	}
	if opts.MemRecords <= 0 {
		opts.MemRecords = DefaultMemRecords
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, meta: meta, counters: metrics.NewCounters()}

	manifestPath := filepath.Join(dir, manifestName)
	if blob, err := os.ReadFile(manifestPath); err == nil {
		if reason := metaMismatch(blob, meta); reason != "" {
			// Wrong seed / version / garbage manifest: everything in the
			// directory was computed under a different identity and must
			// not be served. A failed removal must fail the open — were
			// the manifest rewritten anyway, the surviving records would
			// be served as valid on every later open.
			s.counters.Add("invalidated", 1)
			s.warnings = append(s.warnings, fmt.Sprintf(
				"store: %s: %s; invalidating", dir, reason))
			for _, name := range []string{"scans.log", "dets.log", "labels.log", fidelityName} {
				if err := os.Remove(filepath.Join(dir, name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
					return nil, fmt.Errorf("store: invalidating %s: %w", name, err)
				}
			}
		}
	}
	blob, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := os.WriteFile(manifestPath, append(blob, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}

	open := func(file, name string, decode func([]byte, uint32) (string, any, error)) (*tier, error) {
		t, warns, err := openTier(filepath.Join(dir, file), name, opts.MemRecords, decode)
		if err != nil {
			return nil, fmt.Errorf("store: %s: %w", name, err)
		}
		s.warnings = append(s.warnings, warns...)
		s.counters.Add("corrupt_records", int64(t.corrupt))
		return t, nil
	}
	if s.scans, err = open("scans.log", "scans", decodeScan); err != nil {
		return nil, err
	}
	if s.dets, err = open("dets.log", "dets", decodeDet); err != nil {
		s.scans.close()
		return nil, err
	}
	if s.labels, err = open("labels.log", "labels", decodeLabel); err != nil {
		s.scans.close()
		s.dets.close()
		return nil, err
	}
	s.writeFault = opts.WriteFault
	for _, t := range []*tier{s.scans, s.dets, s.labels} {
		t.readFault = opts.ReadFault
	}
	s.loadFidelity()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Seed returns the seed the store's records are valid under.
func (s *Store) Seed() uint64 { return s.meta.Seed }

// Close syncs and closes the log files. Further operations fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, t := range []*tier{s.scans, s.dets, s.labels} {
		if err := t.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Counters exposes the store's hit / miss / eviction / corruption
// counters (internal/metrics), the observability hook the executor's
// "store hit = zero model cost" accounting is read through.
func (s *Store) Counters() *metrics.Counters { return s.counters }

// Warnings returns the messages accumulated while opening the store
// (corrupt records skipped, invalidation) for surfacing in CLIs.
func (s *Store) Warnings() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.warnings...)
}

// metaMismatch explains why an existing manifest blob does not match
// the expected identity, naming every offending field with its found
// and expected values (so an invalidation warning says exactly which
// identity moved). It returns "" when the manifest matches.
func metaMismatch(blob []byte, want Meta) string {
	var have Meta
	if err := json.Unmarshal(blob, &have); err != nil {
		return fmt.Sprintf("manifest unreadable (%v)", err)
	}
	var fields []string
	if have.Version != want.Version {
		fields = append(fields, fmt.Sprintf("version found %d, expected %d", have.Version, want.Version))
	}
	if have.Seed != want.Seed {
		fields = append(fields, fmt.Sprintf("seed found %d, expected %d", have.Seed, want.Seed))
	}
	if len(fields) == 0 {
		return ""
	}
	return "manifest mismatch: " + strings.Join(fields, "; ")
}

// scanKey / detKey / labelKey build the index keys. \x00 separators keep
// compound keys unambiguous for any source / model / signature strings.
func scanKey(source, sig string, frame int) string {
	return fmt.Sprintf("%s\x00%s\x00%d", source, sig, frame)
}

func detKey(source, model string, frame int) string {
	return fmt.Sprintf("%s\x00%s\x00%d", source, model, frame)
}

func labelKey(source, model string, frame int, x1, y1, x2, y2, truthID int) string {
	return fmt.Sprintf("%s\x00%s\x00%d\x00%d,%d,%d,%d\x00%d", source, model, frame, x1, y1, x2, y2, truthID)
}

func decodeScan(blob []byte, crc uint32) (string, any, error) {
	var r ScanRecord
	if err := decodeRecord(blob, crc, &r); err != nil {
		return "", nil, err
	}
	return scanKey(r.Source, r.ScanKey, r.Frame), &r, nil
}

func decodeDet(blob []byte, crc uint32) (string, any, error) {
	var r DetRecord
	if err := decodeRecord(blob, crc, &r); err != nil {
		return "", nil, err
	}
	return detKey(r.Source, r.Model, r.Frame), &r, nil
}

func decodeLabel(blob []byte, crc uint32) (string, any, error) {
	var r LabelRecord
	if err := decodeRecord(blob, crc, &r); err != nil {
		return "", nil, err
	}
	return labelKey(r.Source, r.Model, r.Frame, r.X1, r.Y1, r.X2, r.Y2, r.TruthID), &r, nil
}

// put frames and appends one record under the store lock.
func (s *Store) put(t *tier, kind, key string, val any) error {
	framed, err := encodeRecord(val)
	if err != nil {
		return fmt.Errorf("store: encode %s: %w", kind, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: %s put on closed store", kind)
	}
	if t.memOnly {
		t.install(key, val)
		s.counters.Add(kind+"_puts_mem_only", 1)
		return nil
	}
	if s.writeFault != nil {
		err = s.writeFault(t.name)
	}
	if err == nil {
		err = t.put(key, val, framed)
	}
	if err != nil {
		// A failed append downgrades the whole tier to memory-only
		// rather than failing the query: the store is a cache, so
		// serving from memory (and recomputing what falls out) is always
		// correct — only cross-process reuse is lost. Appending past a
		// failed write is not attempted again: the log tail state is
		// unknown, and a gap would corrupt the framing.
		s.degradeTierLocked(t, kind, err)
		t.install(key, val)
		s.counters.Add(kind+"_puts_mem_only", 1)
		return nil
	}
	s.counters.Add(kind+"_puts", 1)
	return nil
}

// degradeTierLocked flips one tier into memory-only mode after a write
// failure. Callers hold s.mu.
func (s *Store) degradeTierLocked(t *tier, kind string, err error) {
	s.counters.Add(kind+"_write_failures", 1)
	if !t.memOnly {
		t.memOnly = true
		s.counters.Add("tier_degraded_mem_only", 1)
		s.warnings = append(s.warnings, fmt.Sprintf(
			"store: %s: append failed (%v); tier degraded to memory-only", t.name, err))
	}
}

// get reads one record under the store lock, counting tier hits.
func (s *Store) get(t *tier, kind, key string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	faultedBefore := t.faultedReads
	v, memHit, ok := t.get(key)
	if t.faultedReads > faultedBefore {
		s.counters.Add(kind+"_faulted_reads", 1)
	}
	switch {
	case !ok:
		s.counters.Add(kind+"_misses", 1)
	case memHit:
		s.counters.Add(kind+"_mem_hits", 1)
	default:
		s.counters.Add(kind+"_disk_hits", 1)
	}
	return v, ok
}

// PutScan persists one scan group's outcome for a frame.
func (s *Store) PutScan(rec *ScanRecord) error {
	return s.put(s.scans, "scan", scanKey(rec.Source, rec.ScanKey, rec.Frame), rec)
}

// GetScan returns a frame's persisted scan outcome for one scan-group
// signature. The returned record is shared and must not be mutated.
func (s *Store) GetScan(source, sig string, frame int) (*ScanRecord, bool) {
	v, ok := s.get(s.scans, "scan", scanKey(source, sig, frame))
	if !ok {
		return nil, false
	}
	return v.(*ScanRecord), true
}

// GetScanRef is GetScan plus a pin: the record's hot-tier entry is
// protected from LRU eviction until release is called. Long replays
// (backfill over thousands of frames) pin each record only while
// reading it, so churn from concurrent queries cannot thrash an entry
// out from under the replay mid-read.
func (s *Store) GetScanRef(source, sig string, frame int) (rec *ScanRecord, release func(), ok bool) {
	key := scanKey(source, sig, frame)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, false
	}
	v, memHit, found := s.scans.get(key)
	if !found {
		s.counters.Add("scan_misses", 1)
		return nil, nil, false
	}
	if memHit {
		s.counters.Add("scan_mem_hits", 1)
	} else {
		s.counters.Add("scan_disk_hits", 1)
	}
	s.scans.pin(key)
	release = func() {
		s.mu.Lock()
		s.scans.unpin(key)
		s.mu.Unlock()
	}
	return v.(*ScanRecord), release, true
}

// PutDets persists one detector invocation's raw output.
func (s *Store) PutDets(source, model string, frame int, dets []Detection) error {
	rec := &DetRecord{Source: source, Model: model, Frame: frame, Dets: dets}
	return s.put(s.dets, "det", detKey(source, model, frame), rec)
}

// GetDets returns a frame's persisted raw detector output. The returned
// slice is shared and must not be mutated.
func (s *Store) GetDets(source, model string, frame int) ([]Detection, bool) {
	v, ok := s.get(s.dets, "det", detKey(source, model, frame))
	if !ok {
		return nil, false
	}
	return v.(*DetRecord).Dets, true
}

// PutLabel persists one per-crop model output. Values of types the
// store cannot round-trip exactly are silently not persisted (the store
// is a cache; recomputing is always correct).
func (s *Store) PutLabel(source, model string, frame int, box geom.BBox, truthID int, value any) error {
	if !gobSafe(value) {
		s.counters.Add("label_skipped_type", 1)
		return nil
	}
	x1, y1, x2, y2 := int(box.X1), int(box.Y1), int(box.X2), int(box.Y2)
	rec := &LabelRecord{
		Source: source, Model: model, Frame: frame,
		X1: x1, Y1: y1, X2: x2, Y2: y2, TruthID: truthID, Value: value,
	}
	return s.put(s.labels, "label", labelKey(source, model, frame, x1, y1, x2, y2, truthID), rec)
}

// GetLabel returns a persisted per-crop model output.
func (s *Store) GetLabel(source, model string, frame int, box geom.BBox, truthID int) (any, bool) {
	x1, y1, x2, y2 := int(box.X1), int(box.Y1), int(box.X2), int(box.Y2)
	v, ok := s.get(s.labels, "label", labelKey(source, model, frame, x1, y1, x2, y2, truthID))
	if !ok {
		return nil, false
	}
	return v.(*LabelRecord).Value, true
}

// CoversScans reports whether the store holds a scan record for every
// frame in [0, frames) of (source, sig) — the precondition for a
// backfill replay.
func (s *Store) CoversScans(source, sig string, frames int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	for f := 0; f < frames; f++ {
		if _, ok := s.scans.idx[scanKey(source, sig, f)]; !ok {
			return false
		}
	}
	return true
}

// Stats is a point-in-time summary of the store's tiers.
type Stats struct {
	// ScanRecords / DetRecords / LabelRecords count durable (disk-tier)
	// records per kind.
	ScanRecords, DetRecords, LabelRecords int
	// MemRecords counts hot-tier residents across kinds.
	MemRecords int
	// Evicted counts hot-tier evictions (records remain on disk).
	Evicted int
	// CorruptRecords counts records skipped at open.
	CorruptRecords int
	// MemOnlyTiers counts tiers degraded to memory-only by write
	// failures (0–3); FaultedReads counts disk reads served as misses
	// by the injected read hook.
	MemOnlyTiers int
	FaultedReads int
	// FidelityEntries counts fidelity-manifest entries across sources.
	FidelityEntries int
}

// TierStats summarizes the store for dashboards (/streamz) and CLIs.
func (s *Store) TierStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		ScanRecords:     len(s.scans.idx),
		DetRecords:      len(s.dets.idx),
		LabelRecords:    len(s.labels.idx),
		MemRecords:      len(s.scans.mem) + len(s.dets.mem) + len(s.labels.mem),
		Evicted:         s.scans.evicted + s.dets.evicted + s.labels.evicted,
		CorruptRecords:  s.scans.corrupt + s.dets.corrupt + s.labels.corrupt,
		FaultedReads:    s.scans.faultedReads + s.dets.faultedReads + s.labels.faultedReads,
		FidelityEntries: len(s.fidelity),
	}
	for _, t := range []*tier{s.scans, s.dets, s.labels} {
		if t.memOnly {
			st.MemOnlyTiers++
		}
	}
	return st
}
