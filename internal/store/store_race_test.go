package store

import (
	"fmt"
	"sync"
	"testing"

	"vqpy/internal/geom"
)

// TestConcurrentAccess drives writers, readers and pinned readers from
// many goroutines at once — the shape of MuxStream lanes populating the
// store while a backfill replays and a rescan reads. Run under -race.
func TestConcurrentAccess(t *testing.T) {
	s := openTest(t, t.TempDir(), 7, 32)
	defer s.Close()

	const (
		goroutines = 8
		frames     = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sig := fmt.Sprintf("sig%d", g%2)
			for f := 0; f < frames; f++ {
				switch f % 4 {
				case 0:
					rec := scanRec("cam", sig, f)
					if err := s.PutScan(rec); err != nil {
						t.Errorf("PutScan: %v", err)
						return
					}
				case 1:
					s.GetScan("cam", sig, f-1)
				case 2:
					if rec, release, ok := s.GetScanRef("cam", sig, f-2); ok {
						_ = rec.Frame
						release()
					}
				case 3:
					if err := s.PutLabel("cam", "m", f, geom.Rect(0, 0, 1, 1), g, fmt.Sprint(g)); err != nil {
						t.Errorf("PutLabel: %v", err)
						return
					}
					s.GetLabel("cam", "m", f, geom.Rect(0, 0, 1, 1), g)
				}
			}
		}(g)
	}
	wg.Wait()

	stats := s.TierStats()
	if stats.ScanRecords == 0 || stats.LabelRecords == 0 {
		t.Fatalf("expected durable records after concurrent churn: %+v", stats)
	}
}
