package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vqpy/internal/geom"
)

func openTest(t *testing.T, dir string, seed uint64, memCap int) *Store {
	t.Helper()
	s, err := Open(dir, Meta{Seed: seed}, Options{MemRecords: memCap})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func scanRec(source, sig string, frame int) *ScanRecord {
	return &ScanRecord{
		Source: source, ScanKey: sig, Detect: "yolox", Frame: frame,
		IDs: map[int][]int{1: {frame, frame + 1}},
	}
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 42, 16)

	dets := []Detection{
		{Box: geom.Rect(1, 2, 3, 4), Class: 1, Score: 0.9, TruthID: 7},
		{Box: geom.Rect(5, 6, 7, 8), Class: 2, Score: 0.4, TruthID: 8},
	}
	if err := s.PutDets("cam", "yolox", 3, dets); err != nil {
		t.Fatalf("PutDets: %v", err)
	}
	if err := s.PutScan(scanRec("cam", "f|yolox", 3)); err != nil {
		t.Fatalf("PutScan: %v", err)
	}
	if err := s.PutLabel("cam", "color_detect", 3, geom.Rect(1, 2, 3, 4), 7, "red"); err != nil {
		t.Fatalf("PutLabel: %v", err)
	}
	if err := s.PutLabel("cam", "reid", 3, geom.Rect(1, 2, 3, 4), 7, []float64{0.5, -1}); err != nil {
		t.Fatalf("PutLabel: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openTest(t, dir, 42, 16)
	defer s2.Close()
	gotDets, ok := s2.GetDets("cam", "yolox", 3)
	if !ok || !reflect.DeepEqual(gotDets, dets) {
		t.Fatalf("GetDets after reopen = %v, %v; want %v", gotDets, ok, dets)
	}
	gotScan, ok := s2.GetScan("cam", "f|yolox", 3)
	if !ok || !reflect.DeepEqual(gotScan.IDs, map[int][]int{1: {3, 4}}) || gotScan.Detect != "yolox" {
		t.Fatalf("GetScan after reopen = %+v, %v", gotScan, ok)
	}
	if v, ok := s2.GetLabel("cam", "color_detect", 3, geom.Rect(1, 2, 3, 4), 7); !ok || v != "red" {
		t.Fatalf("GetLabel = %v, %v; want red", v, ok)
	}
	if v, ok := s2.GetLabel("cam", "reid", 3, geom.Rect(1, 2, 3, 4), 7); !ok ||
		!reflect.DeepEqual(v, []float64{0.5, -1}) {
		t.Fatalf("GetLabel embedding = %v (%T), %v", v, v, ok)
	}
	if _, ok := s2.GetScan("cam", "f|yolox", 99); ok {
		t.Fatal("GetScan of unknown frame should miss")
	}
	if s2.Counters().Get("scan_disk_hits") == 0 {
		t.Fatal("reopened store should serve from the disk tier")
	}
}

func TestLatestRecordWins(t *testing.T) {
	s := openTest(t, t.TempDir(), 1, 16)
	defer s.Close()
	r1 := scanRec("cam", "sig", 0)
	if err := s.PutScan(r1); err != nil {
		t.Fatal(err)
	}
	r2 := scanRec("cam", "sig", 0)
	r2.IDs = map[int][]int{1: {5}, 2: {9}}
	if err := s.PutScan(r2); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetScan("cam", "sig", 0)
	if !ok || !reflect.DeepEqual(got.IDs, r2.IDs) {
		t.Fatalf("GetScan = %+v; want the updated record", got)
	}
}

func TestLRUEvictionUnderChurnAndRefcountPins(t *testing.T) {
	s := openTest(t, t.TempDir(), 1, 4)
	defer s.Close()

	for f := 0; f < 4; f++ {
		if err := s.PutScan(scanRec("cam", "sig", f)); err != nil {
			t.Fatal(err)
		}
	}
	// Pin frame 0, then churn far past capacity.
	rec, release, ok := s.GetScanRef("cam", "sig", 0)
	if !ok || rec.Frame != 0 {
		t.Fatalf("GetScanRef = %+v, %v", rec, ok)
	}
	for f := 4; f < 40; f++ {
		if err := s.PutScan(scanRec("cam", "sig", f)); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	_, pinnedResident := s.scans.mem[scanKey("cam", "sig", 0)]
	memLen := len(s.scans.mem)
	evicted := s.scans.evicted
	s.mu.Unlock()
	if !pinnedResident {
		t.Fatal("pinned record was evicted by churn")
	}
	if memLen > 5 { // capacity + the one pinned overflow slot
		t.Fatalf("hot tier grew to %d entries (cap 4)", memLen)
	}
	if evicted == 0 {
		t.Fatal("churn past capacity should evict")
	}

	// Evicted records remain readable from the archival tier.
	if got, ok := s.GetScan("cam", "sig", 5); !ok || got.Frame != 5 {
		t.Fatalf("evicted record not readable from disk: %+v, %v", got, ok)
	}
	if s.Counters().Get("scan_disk_hits") == 0 {
		t.Fatal("expected a disk-tier hit after eviction")
	}

	// Released records become evictable again.
	release()
	for f := 40; f < 50; f++ {
		if err := s.PutScan(scanRec("cam", "sig", f)); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	_, stillResident := s.scans.mem[scanKey("cam", "sig", 0)]
	s.mu.Unlock()
	if stillResident {
		t.Fatal("released record survived churn it should have been evicted by")
	}
}

func TestCorruptTailIsTruncatedAndSkipped(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 1, 16)
	for f := 0; f < 3; f++ {
		if err := s.PutScan(scanRec("cam", "sig", f)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Append garbage that looks like a torn write.
	path := filepath.Join(dir, "scans.log")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openTest(t, dir, 1, 16)
	defer s2.Close()
	for f := 0; f < 3; f++ {
		if got, ok := s2.GetScan("cam", "sig", f); !ok || got.Frame != f {
			t.Fatalf("frame %d lost to tail corruption: %+v, %v", f, got, ok)
		}
	}
	if len(s2.Warnings()) == 0 {
		t.Fatal("expected a corruption warning")
	}
	if s2.Counters().Get("corrupt_records") == 0 {
		t.Fatal("expected corrupt_records counter")
	}
	// The store must keep accepting appends after recovery.
	if err := s2.PutScan(scanRec("cam", "sig", 3)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if got, ok := s2.GetScan("cam", "sig", 3); !ok || got.Frame != 3 {
		t.Fatalf("record appended after recovery unreadable: %+v, %v", got, ok)
	}
}

func TestGarbageRecordMidFileIsSkipped(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 1, 16)
	if err := s.PutScan(scanRec("cam", "sig", 0)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Corrupt the first record's payload in place (framing stays valid),
	// then append a healthy record after it.
	path := filepath.Join(dir, "scans.log")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[recordHeaderBytes+2] ^= 0xFF
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, 1, 16)
	if _, ok := s2.GetScan("cam", "sig", 0); ok {
		t.Fatal("corrupt record should not be served")
	}
	if s2.Counters().Get("corrupt_records") == 0 {
		t.Fatal("expected corrupt_records counter")
	}
	if err := s2.PutScan(scanRec("cam", "sig", 1)); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	s3 := openTest(t, dir, 1, 16)
	defer s3.Close()
	if got, ok := s3.GetScan("cam", "sig", 1); !ok || got.Frame != 1 {
		t.Fatalf("healthy record after corrupt one unreadable: %+v, %v", got, ok)
	}
}

func TestSeedMismatchInvalidates(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 42, 16)
	if err := s.PutScan(scanRec("cam", "sig", 0)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openTest(t, dir, 43, 16)
	defer s2.Close()
	if _, ok := s2.GetScan("cam", "sig", 0); ok {
		t.Fatal("records from another seed must not be served")
	}
	if s2.Counters().Get("invalidated") != 1 {
		t.Fatal("expected invalidation counter")
	}
	if s2.Seed() != 43 {
		t.Fatalf("Seed = %d; want 43", s2.Seed())
	}
}

func TestCoversScans(t *testing.T) {
	s := openTest(t, t.TempDir(), 1, 2) // tiny hot tier: coverage must come from the index
	defer s.Close()
	for f := 0; f < 10; f++ {
		if err := s.PutScan(scanRec("cam", "sig", f)); err != nil {
			t.Fatal(err)
		}
	}
	if !s.CoversScans("cam", "sig", 10) {
		t.Fatal("CoversScans(10) should hold")
	}
	if s.CoversScans("cam", "sig", 11) {
		t.Fatal("CoversScans(11) should fail")
	}
	if s.CoversScans("cam", "other", 1) {
		t.Fatal("CoversScans of unknown signature should fail")
	}
}

func TestUnsupportedLabelTypeIsSkippedNotFatal(t *testing.T) {
	s := openTest(t, t.TempDir(), 1, 16)
	defer s.Close()
	type odd struct{ X int }
	if err := s.PutLabel("cam", "m", 0, geom.Rect(0, 0, 1, 1), 0, odd{1}); err != nil {
		t.Fatalf("unsupported label type should be skipped, got %v", err)
	}
	if _, ok := s.GetLabel("cam", "m", 0, geom.Rect(0, 0, 1, 1), 0); ok {
		t.Fatal("skipped label must not be served")
	}
	if s.Counters().Get("label_skipped_type") != 1 {
		t.Fatal("expected label_skipped_type counter")
	}
}
