package store

// A tier pairs the two storage levels behind one record kind: a bounded
// in-memory LRU of decoded records (the hot tier) over an append-only
// on-disk log with a full offset index (the archival tier). Reads check
// memory first, then the disk index; disk hits are promoted back into
// memory. Writes always append to disk and insert into memory, so the
// archival tier is a superset of the hot tier and eviction never loses
// data — which is why eviction can be purely size-driven, refined only
// by refcounts: a record pinned by an in-progress reader (a backfill
// replay walking thousands of frames) is skipped by the evictor until
// released.
//
// All methods assume the owning Store's mutex is held.

import (
	"container/list"
	"fmt"
	"io"
	"os"
)

// span locates one record in the log file.
type span struct {
	off int64
	n   int32
}

// memEnt is one resident record of the hot tier.
type memEnt struct {
	key  string
	val  any
	refs int
	elem *list.Element
}

// tier is one record kind's two-level storage.
type tier struct {
	name string
	f    *os.File
	size int64 // logical end of log: next append offset

	idx map[string]span    // every durable record, latest version wins
	mem map[string]*memEnt // decoded hot set
	lru *list.List         // front = most recently used
	cap int                // hot-set capacity (records)

	// decode turns one verified blob into (key, typed record).
	decode func(blob []byte, crc uint32) (string, any, error)

	corrupt int // records skipped at open (bad CRC / undecodable)
	evicted int // hot-tier evictions (records remain on disk)

	// memOnly marks a tier degraded by a write failure: appends stop
	// (the log tail state is unknown) and records live only in the hot
	// tier — a pure cache, evictions now lose the record. Set by
	// Store.degradeTierLocked, never cleared within a process.
	memOnly bool
	// readFault is the chaos layer's injectable disk-read hook; an
	// error from it serves the read as a miss (faultedReads counts).
	readFault    func(kind string) error
	faultedReads int
}

// openTier opens (creating if needed) one log file and rebuilds its
// index, skipping corrupt records and truncating a torn tail.
func openTier(path, name string, capacity int,
	decode func(blob []byte, crc uint32) (string, any, error)) (*tier, []string, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	t := &tier{
		name: name, f: f,
		idx: make(map[string]span), mem: make(map[string]*memEnt),
		lru: list.New(), cap: capacity, decode: decode,
	}
	var warnings []string
	fileSize := st.Size()
	off := int64(0)
	for off < fileSize {
		length, crc, err := readHeader(f, off)
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF || int64(length) > maxRecordBytes ||
			off+recordHeaderBytes+int64(length) > fileSize {
			// Torn or garbage framing: nothing beyond this point can be
			// trusted, so the logical log ends here.
			warnings = append(warnings,
				fmt.Sprintf("store: %s: truncating torn tail at offset %d (file size %d)", name, off, fileSize))
			t.corrupt++
			break
		}
		blob := make([]byte, length)
		if _, err := f.ReadAt(blob, off+recordHeaderBytes); err != nil {
			warnings = append(warnings,
				fmt.Sprintf("store: %s: unreadable record at offset %d: %v", name, off, err))
			t.corrupt++
			break
		}
		rec := span{off: off, n: int32(length)}
		off += recordHeaderBytes + int64(length)
		key, _, err := t.decode(blob, crc)
		if err != nil {
			// Framing intact but the payload is garbage (bad CRC or gob):
			// skip just this record and keep indexing the rest.
			warnings = append(warnings,
				fmt.Sprintf("store: %s: skipping corrupt record at offset %d: %v", name, rec.off, err))
			t.corrupt++
			continue
		}
		t.idx[key] = rec
	}
	t.size = off
	if off < fileSize {
		if err := f.Truncate(off); err != nil {
			warnings = append(warnings, fmt.Sprintf("store: %s: truncate failed: %v", name, err))
		}
	}
	return t, warnings, nil
}

// put appends one record and installs it in the hot tier.
func (t *tier) put(key string, val any, framed []byte) error {
	if _, err := t.f.WriteAt(framed, t.size); err != nil {
		return fmt.Errorf("store: %s: append: %w", t.name, err)
	}
	t.idx[key] = span{off: t.size, n: int32(len(framed) - recordHeaderBytes)}
	t.size += int64(len(framed))
	t.install(key, val)
	return nil
}

// get returns the record for key, promoting disk hits into memory.
// memHit distinguishes the tier that served it.
func (t *tier) get(key string) (val any, memHit, ok bool) {
	if e, hit := t.mem[key]; hit {
		t.lru.MoveToFront(e.elem)
		return e.val, true, true
	}
	rec, hit := t.idx[key]
	if !hit {
		return nil, false, false
	}
	if t.readFault != nil {
		if err := t.readFault(t.name); err != nil {
			// Injected disk-read failure: served as a miss. The engine
			// recomputes, which is always correct.
			t.faultedReads++
			return nil, false, false
		}
	}
	blob := make([]byte, rec.n)
	if _, err := t.f.ReadAt(blob, rec.off+recordHeaderBytes); err != nil {
		return nil, false, false
	}
	length, crc, err := readHeader(t.f, rec.off)
	if err != nil || int64(length) != int64(rec.n) {
		return nil, false, false
	}
	_, v, err := t.decode(blob, crc)
	if err != nil {
		return nil, false, false
	}
	t.install(key, v)
	return v, false, true
}

// pin increments the refcount of a resident record; the evictor skips
// pinned entries. The record must currently be in the hot tier (pin is
// called immediately after a successful get).
func (t *tier) pin(key string) {
	if e, ok := t.mem[key]; ok {
		e.refs++
	}
}

// unpin releases one pin.
func (t *tier) unpin(key string) {
	if e, ok := t.mem[key]; ok && e.refs > 0 {
		e.refs--
	}
}

// install inserts (or refreshes) a hot-tier entry and evicts beyond
// capacity, skipping pinned entries. When every entry is pinned the hot
// tier grows past capacity rather than dropping in-use records.
func (t *tier) install(key string, val any) {
	if e, ok := t.mem[key]; ok {
		e.val = val
		t.lru.MoveToFront(e.elem)
		return
	}
	e := &memEnt{key: key, val: val}
	e.elem = t.lru.PushFront(e)
	t.mem[key] = e
	for len(t.mem) > t.cap {
		victim := t.oldestUnpinned()
		if victim == nil {
			break
		}
		t.lru.Remove(victim.elem)
		delete(t.mem, victim.key)
		t.evicted++
	}
}

// oldestUnpinned walks the LRU list from the cold end past pinned
// entries.
func (t *tier) oldestUnpinned() *memEnt {
	for el := t.lru.Back(); el != nil; el = el.Prev() {
		if e := el.Value.(*memEnt); e.refs == 0 {
			return e
		}
	}
	return nil
}

// close syncs and closes the log.
func (t *tier) close() error {
	if err := t.f.Sync(); err != nil {
		t.f.Close()
		return err
	}
	return t.f.Close()
}
