package track

import "math"

// Hungarian solves the rectangular assignment problem: given an n×m cost
// matrix, it returns assign where assign[i] is the column matched to row
// i, or -1 if row i is unmatched. The total cost of the returned matching
// is minimal. Complexity is O(k³) for k = max(n, m).
//
// The implementation is the classic potentials-based shortest augmenting
// path algorithm (Jonker-Volgenant style) on an implicitly padded square
// matrix; padding entries carry a large-but-finite cost so real matches
// are always preferred.
func Hungarian(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	m := len(cost[0])
	k := n
	if m > k {
		k = m
	}
	const pad = 1e9

	at := func(i, j int) float64 {
		if i < n && j < m {
			c := cost[i][j]
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return pad
			}
			return c
		}
		return pad
	}

	// Potentials and matching, 1-indexed internally per the standard
	// formulation. way[j] records the augmenting path.
	u := make([]float64, k+1)
	v := make([]float64, k+1)
	matchCol := make([]int, k+1) // matchCol[j] = row matched to column j
	way := make([]int, k+1)

	for i := 1; i <= k; i++ {
		matchCol[0] = i
		j0 := 0
		minv := make([]float64, k+1)
		used := make([]bool, k+1)
		for j := 0; j <= k; j++ {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := matchCol[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= k; j++ {
				if used[j] {
					continue
				}
				cur := at(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= k; j++ {
				if used[j] {
					u[matchCol[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if matchCol[j0] == 0 {
				break
			}
		}
		// Unwind the augmenting path.
		for j0 != 0 {
			j1 := way[j0]
			matchCol[j0] = matchCol[j1]
			j0 = j1
		}
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	for j := 1; j <= k; j++ {
		i := matchCol[j]
		if i >= 1 && i <= n && j <= m {
			// Reject padded matches: both endpoints must be real.
			assign[i-1] = j - 1
		}
	}
	return assign
}

// GreedyAssign is a fast fallback: repeatedly match the globally
// cheapest remaining (row, col) pair whose cost is below maxCost.
// It returns assign like Hungarian. Quality is lower (not optimal) but
// it runs in O(n·m·min(n,m)) without allocations beyond the result.
func GreedyAssign(cost [][]float64, maxCost float64) []int {
	n := len(cost)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	if n == 0 {
		return assign
	}
	m := len(cost[0])
	usedRow := make([]bool, n)
	usedCol := make([]bool, m)
	for {
		best := maxCost
		bi, bj := -1, -1
		for i := 0; i < n; i++ {
			if usedRow[i] {
				continue
			}
			for j := 0; j < m; j++ {
				if usedCol[j] {
					continue
				}
				if c := cost[i][j]; c < best {
					best, bi, bj = c, i, j
				}
			}
		}
		if bi < 0 {
			return assign
		}
		assign[bi] = bj
		usedRow[bi] = true
		usedCol[bj] = true
	}
}
