package track

import (
	"testing"
	"testing/quick"

	"vqpy/internal/sim"
)

func assignCost(cost [][]float64, assign []int) float64 {
	total := 0.0
	for i, j := range assign {
		if j >= 0 {
			total += cost[i][j]
		}
	}
	return total
}

func TestHungarianSimple(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign := Hungarian(cost)
	// Optimal: row0→col1(1), row1→col0(2), row2→col2(2) = 5.
	if got := assignCost(cost, assign); got != 5 {
		t.Errorf("total cost = %v, assign = %v", got, assign)
	}
}

func TestHungarianRectangular(t *testing.T) {
	// More rows than columns: one row stays unmatched.
	cost := [][]float64{
		{1, 10},
		{10, 1},
		{5, 5},
	}
	assign := Hungarian(cost)
	matched := 0
	seen := map[int]bool{}
	for _, j := range assign {
		if j >= 0 {
			matched++
			if seen[j] {
				t.Fatalf("column %d assigned twice: %v", j, assign)
			}
			seen[j] = true
		}
	}
	if matched != 2 {
		t.Errorf("matched = %d, want 2 (assign=%v)", matched, assign)
	}
	if assign[0] != 0 || assign[1] != 1 {
		t.Errorf("suboptimal assignment: %v", assign)
	}

	// More columns than rows.
	cost2 := [][]float64{{9, 2, 7, 1}}
	assign2 := Hungarian(cost2)
	if assign2[0] != 3 {
		t.Errorf("single-row assign = %v, want col 3", assign2)
	}
}

func TestHungarianEmpty(t *testing.T) {
	if got := Hungarian(nil); got != nil {
		t.Errorf("nil cost = %v", got)
	}
}

func TestHungarianNaNInf(t *testing.T) {
	nan := 0.0
	cost := [][]float64{
		{nan / nan, 1},
		{2, 1e18},
	}
	assign := Hungarian(cost)
	if assign[0] != 1 || assign[1] != 0 {
		t.Errorf("NaN/Inf handling wrong: %v", assign)
	}
}

// bruteForceBest computes the optimal assignment cost by enumeration for
// small square matrices.
func bruteForceBest(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := 1e18
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			total := 0.0
			for i, j := range perm {
				total += cost[i][j]
			}
			if total < best {
				best = total
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func TestHungarianOptimalProperty(t *testing.T) {
	rng := sim.NewRNG(99)
	f := func() bool {
		n := 1 + rng.Intn(5)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = rng.Range(0, 10)
			}
		}
		assign := Hungarian(cost)
		got := assignCost(cost, assign)
		want := bruteForceBest(cost)
		return got <= want+1e-9
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestHungarianPermutationProperty(t *testing.T) {
	// Square matrices must yield a perfect matching (every row matched,
	// every column used at most once).
	rng := sim.NewRNG(100)
	f := func() bool {
		n := 1 + rng.Intn(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = rng.Range(0, 5)
			}
		}
		assign := Hungarian(cost)
		seen := make(map[int]bool)
		for _, j := range assign {
			if j < 0 || j >= n || seen[j] {
				return false
			}
			seen[j] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGreedyAssign(t *testing.T) {
	cost := [][]float64{
		{0.1, 0.9},
		{0.2, 0.8},
	}
	assign := GreedyAssign(cost, 1.0)
	if assign[0] != 0 || assign[1] != 1 {
		t.Errorf("greedy = %v", assign)
	}
	// maxCost gating: (1,1)=0.8 exceeds the 0.5 gate, so row 1 stays
	// unmatched.
	assign = GreedyAssign(cost, 0.5)
	if assign[0] != 0 || assign[1] != -1 {
		t.Errorf("gated greedy = %v", assign)
	}
	// A gate below every cost matches nothing.
	assign = GreedyAssign(cost, 0.05)
	if assign[0] != -1 || assign[1] != -1 {
		t.Errorf("tight gate greedy = %v", assign)
	}
	if got := GreedyAssign(nil, 1); len(got) != 0 {
		t.Errorf("empty greedy = %v", got)
	}
}

func TestGreedyNeverWorseThanGate(t *testing.T) {
	rng := sim.NewRNG(101)
	f := func() bool {
		n, m := 1+rng.Intn(5), 1+rng.Intn(5)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = rng.Range(0, 2)
			}
		}
		assign := GreedyAssign(cost, 1.0)
		for i, j := range assign {
			if j >= 0 && cost[i][j] >= 1.0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
