// Package track implements multi-object tracking: a constant-velocity
// Kalman filter per object, optimal assignment of detections to tracks via
// the Hungarian algorithm (with a greedy fallback), and track lifecycle
// management (tentative → confirmed → lost).
//
// This is the "lightweight tracker based on the Kalman filter" that §4.2
// of the paper uses for object-level computation reuse: its stable track
// identities key the intrinsic-property memo store. It is a genuine
// implementation, not a simulation.
package track

import "vqpy/internal/geom"

// Kalman state layout: [cx, cy, w, h, vx, vy]; measurements are
// [cx, cy, w, h]. Velocity applies to the centroid only; box size is
// modeled as a random walk.
const (
	stateDim = 6
	measDim  = 4
)

type vec6 [stateDim]float64
type mat6 [stateDim][stateDim]float64

// KalmanFilter tracks one object's box with a constant-velocity model.
type KalmanFilter struct {
	x vec6 // state mean
	p mat6 // state covariance
}

// Noise parameters. These follow the common SORT configuration: modest
// process noise on position/size, larger on velocity, and measurement
// noise proportional to nothing fancy — constants suffice at the scales
// of the synthetic scenarios.
const (
	processPosNoise = 1.0
	processVelNoise = 0.5
	measNoise       = 1.0
	initialVelVar   = 100.0
)

// NewKalmanFilter initializes a filter at the measured box with zero
// velocity and large velocity uncertainty.
func NewKalmanFilter(box geom.BBox) *KalmanFilter {
	c := box.Center()
	kf := &KalmanFilter{}
	kf.x = vec6{c.X, c.Y, box.W(), box.H(), 0, 0}
	for i := 0; i < measDim; i++ {
		kf.p[i][i] = 10.0
	}
	kf.p[4][4] = initialVelVar
	kf.p[5][5] = initialVelVar
	return kf
}

// Predict advances the state one frame: x' = F·x, P' = F·P·Fᵀ + Q, where
// F adds velocity to the centroid.
func (kf *KalmanFilter) Predict() geom.BBox {
	// x' = F x
	kf.x[0] += kf.x[4]
	kf.x[1] += kf.x[5]

	// P' = F P Fᵀ + Q, exploiting F's sparsity:
	// rows 0,1 gain the velocity cross terms.
	var fp mat6
	for i := 0; i < stateDim; i++ {
		for j := 0; j < stateDim; j++ {
			fp[i][j] = kf.p[i][j]
		}
	}
	for j := 0; j < stateDim; j++ {
		fp[0][j] += kf.p[4][j]
		fp[1][j] += kf.p[5][j]
	}
	var fpf mat6
	for i := 0; i < stateDim; i++ {
		for j := 0; j < stateDim; j++ {
			fpf[i][j] = fp[i][j]
		}
		fpf[i][0] += fp[i][4]
		fpf[i][1] += fp[i][5]
	}
	kf.p = fpf
	for i := 0; i < measDim; i++ {
		kf.p[i][i] += processPosNoise
	}
	kf.p[4][4] += processVelNoise
	kf.p[5][5] += processVelNoise
	return kf.Box()
}

// Update folds a measured box into the state using the standard Kalman
// update with H = [I₄ 0].
func (kf *KalmanFilter) Update(box geom.BBox) {
	c := box.Center()
	z := [measDim]float64{c.X, c.Y, box.W(), box.H()}

	// Innovation y = z - Hx.
	var y [measDim]float64
	for i := 0; i < measDim; i++ {
		y[i] = z[i] - kf.x[i]
	}

	// S = H P Hᵀ + R is the top-left 4x4 block of P plus R.
	var s [measDim][measDim]float64
	for i := 0; i < measDim; i++ {
		for j := 0; j < measDim; j++ {
			s[i][j] = kf.p[i][j]
		}
		s[i][i] += measNoise
	}
	si, ok := invert4(s)
	if !ok {
		// Degenerate covariance: re-seed at the measurement.
		*kf = *NewKalmanFilter(box)
		return
	}

	// K = P Hᵀ S⁻¹ → columns 0..3 of P times S⁻¹.
	var k [stateDim][measDim]float64
	for i := 0; i < stateDim; i++ {
		for j := 0; j < measDim; j++ {
			sum := 0.0
			for m := 0; m < measDim; m++ {
				sum += kf.p[i][m] * si[m][j]
			}
			k[i][j] = sum
		}
	}

	// x = x + K y.
	for i := 0; i < stateDim; i++ {
		for j := 0; j < measDim; j++ {
			kf.x[i] += k[i][j] * y[j]
		}
	}

	// P = (I - K H) P. KH only affects the first four columns of the
	// multiplier, so compute it directly.
	var kh mat6
	for i := 0; i < stateDim; i++ {
		for j := 0; j < measDim; j++ {
			kh[i][j] = k[i][j]
		}
	}
	var newP mat6
	for i := 0; i < stateDim; i++ {
		for j := 0; j < stateDim; j++ {
			sum := kf.p[i][j]
			for m := 0; m < stateDim; m++ {
				sum -= kh[i][m] * kf.p[m][j]
			}
			newP[i][j] = sum
		}
	}
	kf.p = newP
	if kf.x[2] < 1 {
		kf.x[2] = 1
	}
	if kf.x[3] < 1 {
		kf.x[3] = 1
	}
}

// Box returns the current state as a bounding box.
func (kf *KalmanFilter) Box() geom.BBox {
	cx, cy, w, h := kf.x[0], kf.x[1], kf.x[2], kf.x[3]
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return geom.BBox{X1: cx - w/2, Y1: cy - h/2, X2: cx + w/2, Y2: cy + h/2}
}

// Velocity returns the estimated centroid velocity in pixels per frame.
func (kf *KalmanFilter) Velocity() geom.Point {
	return geom.Point{X: kf.x[4], Y: kf.x[5]}
}

// invert4 inverts a 4x4 matrix by Gauss-Jordan elimination with partial
// pivoting; ok is false for singular matrices.
func invert4(m [4][4]float64) (inv [4][4]float64, ok bool) {
	var a [4][8]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			a[i][j] = m[i][j]
		}
		a[i][4+i] = 1
	}
	for col := 0; col < 4; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < 4; r++ {
			if abs(a[r][col]) > abs(a[pivot][col]) {
				pivot = r
			}
		}
		if abs(a[pivot][col]) < 1e-12 {
			return inv, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		// Normalize and eliminate.
		d := a[col][col]
		for j := 0; j < 8; j++ {
			a[col][j] /= d
		}
		for r := 0; r < 4; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			if f == 0 {
				continue
			}
			for j := 0; j < 8; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			inv[i][j] = a[i][4+j]
		}
	}
	return inv, true
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
