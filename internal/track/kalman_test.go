package track

import (
	"math"
	"testing"
	"testing/quick"

	"vqpy/internal/geom"
)

func TestKalmanInitialBox(t *testing.T) {
	b := geom.Rect(100, 50, 40, 30)
	kf := NewKalmanFilter(b)
	got := kf.Box()
	if math.Abs(got.X1-b.X1) > 1e-9 || math.Abs(got.Y2-b.Y2) > 1e-9 {
		t.Errorf("initial box = %v, want %v", got, b)
	}
	v := kf.Velocity()
	if v.X != 0 || v.Y != 0 {
		t.Errorf("initial velocity = %v", v)
	}
}

func TestKalmanLearnsConstantVelocity(t *testing.T) {
	kf := NewKalmanFilter(geom.Rect(0, 0, 40, 30))
	// Object moves +5 px/frame in x.
	for i := 1; i <= 30; i++ {
		kf.Predict()
		kf.Update(geom.Rect(float64(i)*5, 0, 40, 30))
	}
	v := kf.Velocity()
	if math.Abs(v.X-5) > 0.5 {
		t.Errorf("learned vx = %v, want ≈5", v.X)
	}
	if math.Abs(v.Y) > 0.5 {
		t.Errorf("learned vy = %v, want ≈0", v.Y)
	}
	// Prediction should land near the next true position.
	pred := kf.Predict()
	want := geom.Rect(31*5, 0, 40, 30)
	if d := geom.CenterDist(pred, want); d > 5 {
		t.Errorf("prediction off by %.1f px", d)
	}
}

func TestKalmanCoastsThroughMisses(t *testing.T) {
	kf := NewKalmanFilter(geom.Rect(0, 100, 40, 30))
	for i := 1; i <= 20; i++ {
		kf.Predict()
		kf.Update(geom.Rect(float64(i)*4, 100, 40, 30))
	}
	// Three frames without measurements: box should keep moving.
	before := kf.Box().Center()
	for i := 0; i < 3; i++ {
		kf.Predict()
	}
	after := kf.Box().Center()
	if after.X <= before.X+6 {
		t.Errorf("coasting failed: %.1f -> %.1f", before.X, after.X)
	}
}

func TestKalmanBoxSizePositive(t *testing.T) {
	kf := NewKalmanFilter(geom.Rect(10, 10, 2, 2))
	// Feed degenerate boxes; estimated size must remain >= 1.
	for i := 0; i < 10; i++ {
		kf.Predict()
		kf.Update(geom.BBox{X1: 10, Y1: 10, X2: 10, Y2: 10})
	}
	b := kf.Box()
	if b.W() < 1 || b.H() < 1 {
		t.Errorf("degenerate size: %v", b)
	}
}

func TestKalmanConvergesToStationary(t *testing.T) {
	kf := NewKalmanFilter(geom.Rect(200, 200, 50, 50))
	for i := 0; i < 50; i++ {
		kf.Predict()
		kf.Update(geom.Rect(200, 200, 50, 50))
	}
	if v := kf.Velocity().Norm(); v > 0.2 {
		t.Errorf("stationary velocity = %v", v)
	}
	if d := geom.CenterDist(kf.Box(), geom.Rect(200, 200, 50, 50)); d > 1 {
		t.Errorf("stationary drift = %v", d)
	}
}

func TestInvert4Identity(t *testing.T) {
	var id [4][4]float64
	for i := 0; i < 4; i++ {
		id[i][i] = 1
	}
	inv, ok := invert4(id)
	if !ok {
		t.Fatal("identity not invertible?")
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(inv[i][j]-want) > 1e-12 {
				t.Fatalf("inv(I) != I at %d,%d: %v", i, j, inv[i][j])
			}
		}
	}
}

func TestInvert4Singular(t *testing.T) {
	var m [4][4]float64 // all zeros
	if _, ok := invert4(m); ok {
		t.Error("singular matrix inverted")
	}
}

func TestInvert4Property(t *testing.T) {
	// For random diagonally dominant matrices, m * inv(m) ≈ I.
	f := func(a, b, c, d, e, f0, g, h float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0.5
			}
			return math.Mod(v, 3)
		}
		m := [4][4]float64{
			{10 + clamp(a), clamp(b), clamp(c), clamp(d)},
			{clamp(e), 10 + clamp(f0), clamp(g), clamp(h)},
			{clamp(b), clamp(c), 10 + clamp(d), clamp(a)},
			{clamp(g), clamp(h), clamp(e), 10 + clamp(f0)},
		}
		inv, ok := invert4(m)
		if !ok {
			return false
		}
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				sum := 0.0
				for k := 0; k < 4; k++ {
					sum += m[i][k] * inv[k][j]
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(sum-want) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
