package track

import (
	"testing"
	"testing/quick"

	"vqpy/internal/geom"
	"vqpy/internal/sim"
)

// TestTrackerUniqueIDsProperty: after any update sequence, live tracks
// carry unique IDs and non-negative hit/age counters.
func TestTrackerUniqueIDsProperty(t *testing.T) {
	rng := sim.NewRNG(55)
	f := func() bool {
		tk := NewTracker(Config{ConfirmHits: 1 + rng.Intn(3), MaxMisses: 1 + rng.Intn(5)})
		frames := 5 + rng.Intn(20)
		for fi := 0; fi < frames; fi++ {
			n := rng.Intn(6)
			dets := make([]Detection, n)
			for i := range dets {
				dets[i] = Detection{
					Box:   geom.Rect(rng.Range(0, 500), rng.Range(0, 300), 20+rng.Range(0, 40), 20+rng.Range(0, 30)),
					Class: rng.Intn(3),
					Score: rng.Range(0.3, 1),
				}
			}
			tracks := tk.Update(dets)
			seen := map[int]bool{}
			for _, tr := range tracks {
				if seen[tr.ID] {
					return false
				}
				seen[tr.ID] = true
				if tr.Hits < 1 || tr.Age < 0 || tr.Misses < 0 {
					return false
				}
				if tr.State == Lost {
					return false // lost tracks must be reaped
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestTrackerMatchedThisFrameProperty: tracks with Misses == 0 after an
// update must reference one of this frame's detections.
func TestTrackerMatchedThisFrameProperty(t *testing.T) {
	rng := sim.NewRNG(56)
	f := func() bool {
		tk := NewTracker(Config{ConfirmHits: 1})
		for fi := 0; fi < 10; fi++ {
			n := rng.Intn(4)
			dets := make([]Detection, n)
			refs := map[any]bool{}
			for i := range dets {
				ref := fi*100 + i
				dets[i] = Detection{
					Box:   geom.Rect(rng.Range(0, 400), rng.Range(0, 300), 30, 25),
					Class: 1, Score: 0.9, Ref: ref,
				}
				refs[ref] = true
			}
			for _, tr := range tk.Update(dets) {
				if tr.Misses == 0 && tr.Hits > 0 && n > 0 {
					if tr.Ref != nil && !refs[tr.Ref] {
						// Ref from an earlier frame on a track matched
						// this frame would be a bookkeeping bug.
						if tr.Age == 0 || tr.Hits > 1 {
							continue // matched earlier frames allowed when unmatched now
						}
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
