package track

import (
	"vqpy/internal/geom"
)

// Detection is the tracker's input: one detected box on the current
// frame with its class label and confidence.
type Detection struct {
	Box   geom.BBox
	Class int
	Score float64

	// Ref carries arbitrary caller data (e.g. the originating model
	// output) through the association step.
	Ref any
}

// TrackState is the lifecycle state of a track.
type TrackState int

// Lifecycle states. Tentative tracks have not yet accumulated enough
// consecutive hits to be trusted; Confirmed tracks are reported;
// Lost tracks have exceeded the miss budget and are about to be removed.
const (
	Tentative TrackState = iota
	Confirmed
	Lost
)

// String implements fmt.Stringer.
func (s TrackState) String() string {
	switch s {
	case Tentative:
		return "tentative"
	case Confirmed:
		return "confirmed"
	case Lost:
		return "lost"
	}
	return "invalid"
}

// Track is one tracked object.
type Track struct {
	ID    int
	Class int
	State TrackState

	// Box is the current (filtered) box estimate.
	Box geom.BBox

	// Hits counts total matched detections; Age counts frames since
	// creation; Misses counts consecutive unmatched frames.
	Hits, Age, Misses int

	// Ref is the Ref of the most recent matched detection.
	Ref any

	kf *KalmanFilter
}

// Velocity returns the Kalman-estimated centroid velocity.
func (t *Track) Velocity() geom.Point { return t.kf.Velocity() }

// Config tunes the tracker.
type Config struct {
	// IoUGate rejects associations with IoU below this value.
	IoUGate float64
	// MaxMisses removes a track after this many consecutive misses.
	MaxMisses int
	// ConfirmHits promotes a tentative track after this many hits.
	ConfirmHits int
	// Greedy selects the greedy assigner instead of Hungarian.
	Greedy bool
	// ClassStrict forbids matching detections to tracks of another
	// class.
	ClassStrict bool
}

// DefaultConfig returns the configuration used by the engine's
// lightweight reuse tracker.
func DefaultConfig() Config {
	return Config{IoUGate: 0.15, MaxMisses: 8, ConfirmHits: 2, ClassStrict: true}
}

// Tracker associates per-frame detections into tracks.
type Tracker struct {
	cfg    Config
	tracks []*Track
	nextID int
}

// NewTracker returns a tracker with the given configuration; zero-value
// fields fall back to DefaultConfig values.
func NewTracker(cfg Config) *Tracker {
	def := DefaultConfig()
	if cfg.IoUGate == 0 {
		cfg.IoUGate = def.IoUGate
	}
	if cfg.MaxMisses == 0 {
		cfg.MaxMisses = def.MaxMisses
	}
	if cfg.ConfirmHits == 0 {
		cfg.ConfirmHits = def.ConfirmHits
	}
	return &Tracker{cfg: cfg, nextID: 1}
}

// Tracks returns the live tracks (all states except removed ones).
func (tk *Tracker) Tracks() []*Track { return tk.tracks }

// Confirmed returns only confirmed tracks.
func (tk *Tracker) Confirmed() []*Track {
	out := make([]*Track, 0, len(tk.tracks))
	for _, t := range tk.tracks {
		if t.State == Confirmed {
			out = append(out, t)
		}
	}
	return out
}

// Update advances all tracks one frame, associates the detections, and
// returns the updated live tracks. The returned slice is shared with the
// tracker; callers must not mutate it.
func (tk *Tracker) Update(dets []Detection) []*Track {
	// 1. Predict.
	for _, t := range tk.tracks {
		t.Box = t.kf.Predict()
		t.Age++
	}

	// 2. Build the association cost matrix (1 - IoU, gated).
	n, m := len(tk.tracks), len(dets)
	var assign []int
	if n > 0 && m > 0 {
		cost := make([][]float64, n)
		for i, t := range tk.tracks {
			row := make([]float64, m)
			for j, d := range dets {
				iou := geom.IoU(t.Box, d.Box)
				if iou < tk.cfg.IoUGate || (tk.cfg.ClassStrict && t.Class != d.Class) {
					row[j] = 1e9 // effectively forbidden
				} else {
					row[j] = 1 - iou
				}
			}
			cost[i] = row
		}
		if tk.cfg.Greedy {
			assign = GreedyAssign(cost, 1.0)
		} else {
			assign = Hungarian(cost)
			// Reject matches the gate forbade; Hungarian may be forced
			// into them when everything is expensive.
			for i, j := range assign {
				if j >= 0 && cost[i][j] >= 1e8 {
					assign[i] = -1
				}
			}
		}
	} else {
		assign = make([]int, n)
		for i := range assign {
			assign[i] = -1
		}
	}

	// 3. Update matched tracks.
	matchedDet := make([]bool, m)
	for i, t := range tk.tracks {
		j := assign[i]
		if j < 0 {
			t.Misses++
			if t.Misses > tk.cfg.MaxMisses {
				t.State = Lost
			}
			continue
		}
		matchedDet[j] = true
		t.kf.Update(dets[j].Box)
		t.Box = t.kf.Box()
		t.Hits++
		t.Misses = 0
		t.Ref = dets[j].Ref
		if t.State == Tentative && t.Hits >= tk.cfg.ConfirmHits {
			t.State = Confirmed
		}
	}

	// 4. Spawn tracks for unmatched detections.
	for j, d := range dets {
		if matchedDet[j] {
			continue
		}
		t := &Track{
			ID: tk.nextID, Class: d.Class, State: Tentative,
			Box: d.Box, Hits: 1, Ref: d.Ref,
			kf: NewKalmanFilter(d.Box),
		}
		if tk.cfg.ConfirmHits <= 1 {
			t.State = Confirmed
		}
		tk.nextID++
		tk.tracks = append(tk.tracks, t)
	}

	// 5. Reap lost tracks.
	live := tk.tracks[:0]
	for _, t := range tk.tracks {
		if t.State != Lost {
			live = append(live, t)
		}
	}
	tk.tracks = live
	return tk.tracks
}

// Reset clears all tracks but preserves the ID counter so identities
// never repeat within a session.
func (tk *Tracker) Reset() { tk.tracks = nil }
