package track

import (
	"testing"

	"vqpy/internal/geom"
	"vqpy/internal/video"
)

func det(x, y, w, h float64, class int) Detection {
	return Detection{Box: geom.Rect(x, y, w, h), Class: class, Score: 0.9}
}

func TestTrackerSpawnsAndConfirms(t *testing.T) {
	tk := NewTracker(Config{ConfirmHits: 2})
	tracks := tk.Update([]Detection{det(0, 0, 40, 30, 1)})
	if len(tracks) != 1 || tracks[0].State != Tentative {
		t.Fatalf("after 1 frame: %+v", tracks)
	}
	tracks = tk.Update([]Detection{det(2, 0, 40, 30, 1)})
	if len(tracks) != 1 || tracks[0].State != Confirmed {
		t.Fatalf("after 2 frames: state=%v", tracks[0].State)
	}
	if tracks[0].ID != 1 {
		t.Errorf("ID = %d", tracks[0].ID)
	}
}

func TestTrackerIdentityStability(t *testing.T) {
	tk := NewTracker(DefaultConfig())
	var id int
	for i := 0; i < 30; i++ {
		tracks := tk.Update([]Detection{det(float64(i)*5, 100, 40, 30, 1)})
		if len(tracks) != 1 {
			t.Fatalf("frame %d: %d tracks", i, len(tracks))
		}
		if i == 0 {
			id = tracks[0].ID
		} else if tracks[0].ID != id {
			t.Fatalf("identity switched at frame %d: %d -> %d", i, id, tracks[0].ID)
		}
	}
}

func TestTrackerSurvivesShortOcclusion(t *testing.T) {
	tk := NewTracker(Config{MaxMisses: 5, ConfirmHits: 1})
	var id int
	for i := 0; i < 10; i++ {
		tracks := tk.Update([]Detection{det(float64(i)*4, 50, 40, 30, 1)})
		id = tracks[0].ID
	}
	// 3 frames of occlusion (no detections).
	for i := 0; i < 3; i++ {
		tk.Update(nil)
	}
	// Reappears where the motion model predicts.
	tracks := tk.Update([]Detection{det(13*4, 50, 40, 30, 1)})
	found := false
	for _, tr := range tracks {
		if tr.ID == id && tr.State == Confirmed {
			found = true
		}
	}
	if !found {
		t.Error("track identity lost over 3-frame occlusion")
	}
}

func TestTrackerDropsAfterMaxMisses(t *testing.T) {
	tk := NewTracker(Config{MaxMisses: 2, ConfirmHits: 1})
	tk.Update([]Detection{det(0, 0, 40, 30, 1)})
	for i := 0; i < 3; i++ {
		tk.Update(nil)
	}
	if n := len(tk.Tracks()); n != 0 {
		t.Errorf("%d tracks survive past miss budget", n)
	}
}

func TestTrackerTwoObjectsNoSwap(t *testing.T) {
	tk := NewTracker(Config{ConfirmHits: 1})
	// Two objects crossing paths horizontally, vertically separated
	// enough for IoU gating to keep them distinct.
	idAt := map[string]int{}
	for i := 0; i <= 20; i++ {
		a := det(float64(i)*10, 50, 40, 30, 1)      // moving right
		b := det(200-float64(i)*10, 150, 40, 30, 1) // moving left
		tracks := tk.Update([]Detection{a, b})
		if len(tracks) != 2 {
			t.Fatalf("frame %d: %d tracks", i, len(tracks))
		}
		for _, tr := range tracks {
			key := "top"
			if tr.Box.Center().Y > 100 {
				key = "bottom"
			}
			if prev, ok := idAt[key]; ok && prev != tr.ID {
				t.Fatalf("identity swap on %s lane at frame %d", key, i)
			}
			idAt[key] = tr.ID
		}
	}
}

func TestTrackerClassStrict(t *testing.T) {
	tk := NewTracker(Config{ConfirmHits: 1, ClassStrict: true})
	tk.Update([]Detection{det(0, 0, 40, 30, 1)})
	// Same place, different class: must spawn a new track, not match.
	tracks := tk.Update([]Detection{det(0, 0, 40, 30, 2)})
	classes := map[int]bool{}
	for _, tr := range tracks {
		classes[tr.Class] = true
	}
	if !classes[1] || !classes[2] {
		t.Errorf("class-strict matching failed: %+v", tracks)
	}
}

func TestTrackerGreedyMode(t *testing.T) {
	tk := NewTracker(Config{ConfirmHits: 1, Greedy: true})
	for i := 0; i < 10; i++ {
		tracks := tk.Update([]Detection{det(float64(i)*3, 0, 40, 30, 1)})
		if len(tracks) != 1 {
			t.Fatalf("greedy frame %d: %d tracks", i, len(tracks))
		}
	}
}

func TestTrackerRefPropagation(t *testing.T) {
	tk := NewTracker(Config{ConfirmHits: 1})
	d := det(0, 0, 40, 30, 1)
	d.Ref = "payload"
	tracks := tk.Update([]Detection{d})
	if tracks[0].Ref != "payload" {
		t.Errorf("Ref = %v", tracks[0].Ref)
	}
}

func TestTrackerResetKeepsIDs(t *testing.T) {
	tk := NewTracker(Config{ConfirmHits: 1})
	tk.Update([]Detection{det(0, 0, 40, 30, 1)})
	tk.Reset()
	tracks := tk.Update([]Detection{det(0, 0, 40, 30, 1)})
	if tracks[0].ID == 1 {
		t.Error("IDs reused after Reset")
	}
}

func TestTrackStateString(t *testing.T) {
	if Tentative.String() != "tentative" || Confirmed.String() != "confirmed" ||
		Lost.String() != "lost" || TrackState(9).String() != "invalid" {
		t.Error("TrackState strings wrong")
	}
}

// TestTrackerOnSyntheticVideo runs the tracker over ground-truth boxes of
// a generated scenario and checks identity purity: each emitted track
// should predominantly cover a single ground-truth track.
func TestTrackerOnSyntheticVideo(t *testing.T) {
	v := video.Banff(21, 30).Generate()
	tk := NewTracker(DefaultConfig())
	// trackGT[trackerID][gtID] = association counts.
	trackGT := make(map[int]map[int]int)
	for i := range v.Frames {
		dets := make([]Detection, 0, len(v.Frames[i].Objects))
		for _, o := range v.Frames[i].Objects {
			dets = append(dets, Detection{Box: o.Box, Class: int(o.Class), Score: 1, Ref: o.TrackID})
		}
		for _, tr := range tk.Update(dets) {
			if tr.State != Confirmed || tr.Ref == nil {
				continue
			}
			gt := tr.Ref.(int)
			if trackGT[tr.ID] == nil {
				trackGT[tr.ID] = make(map[int]int)
			}
			trackGT[tr.ID][gt]++
		}
	}
	if len(trackGT) == 0 {
		t.Skip("no confirmed tracks in scenario")
	}
	pure, total := 0, 0
	for _, gts := range trackGT {
		best, sum := 0, 0
		for _, n := range gts {
			sum += n
			if n > best {
				best = n
			}
		}
		total++
		if float64(best)/float64(sum) > 0.9 {
			pure++
		}
	}
	if frac := float64(pure) / float64(total); frac < 0.8 {
		t.Errorf("track purity %.2f (%d/%d) too low", frac, pure, total)
	}
}
