package video

import "vqpy/internal/geom"

// Dataset presets mirror the video sources used in the paper's
// evaluation. Each returns a Scenario that can be generated directly or
// tweaked (duration, seed) first.

// CityFlow approximates the CityFlow-NL traffic footage used in §5.1:
// 10 fps, 960p-class resolution, an intersection with a moderate vehicle
// flow where green vehicles are rare and black ones common — the rarity
// structure that makes per-query speedups differ across Q1-Q5.
func CityFlow(seed uint64, durationSec float64) Scenario {
	return Scenario{
		Name: "cityflow", Seed: seed, FPS: 10, W: 1280, H: 960,
		Duration:       durationSec,
		VehiclesPerSec: 1.2,
		PersonsPerSec:  0.05,
		ColorWeights: map[Color]float64{
			ColorBlack: 0.28, ColorWhite: 0.22, ColorSilver: 0.16,
			ColorBlue: 0.12, ColorRed: 0.12, ColorGreen: 0.05, ColorYellow: 0.05,
		},
		SpeederFrac: 0.08,
	}
}

// Banff approximates the Banff live cam (15 fps, 1280x720): a quiet
// mountain-town street with light traffic and pedestrians.
func Banff(seed uint64, durationSec float64) Scenario {
	return Scenario{
		Name: "banff", Seed: seed, FPS: 15, W: 1280, H: 720,
		Duration:       durationSec,
		VehiclesPerSec: 0.35,
		PersonsPerSec:  0.25,
		SpeederFrac:    0.06,
	}
}

// Jackson approximates the Jackson Hole town square cam (15 fps,
// 1920x1080): moderate traffic, frequent pedestrians.
func Jackson(seed uint64, durationSec float64) Scenario {
	return Scenario{
		Name: "jackson", Seed: seed, FPS: 15, W: 1920, H: 1080,
		Duration:       durationSec,
		VehiclesPerSec: 0.6,
		PersonsPerSec:  0.4,
		SpeederFrac:    0.1,
	}
}

// Southampton approximates the Southampton traffic cam (30 fps,
// 1920x1080): a busier road at double the frame rate.
func Southampton(seed uint64, durationSec float64) Scenario {
	return Scenario{
		Name: "southampton", Seed: seed, FPS: 30, W: 1920, H: 1080,
		Duration:       durationSec,
		VehiclesPerSec: 0.9,
		PersonsPerSec:  0.2,
		SpeederFrac:    0.12,
	}
}

// Auburn approximates the Auburn Toomer's Corner webcam used for the
// MLLM comparison (§5.3): a crossing with occasional pedestrians and
// cars. Densities are deliberately sparse so that one-second clips have
// positive rates comparable to the paper's Table 6 (22-46% per query).
func Auburn(seed uint64, durationSec float64) Scenario {
	return Scenario{
		Name: "auburn", Seed: seed, FPS: 15, W: 1920, H: 1080,
		Duration:       durationSec,
		VehiclesPerSec: 0.22,
		PersonsPerSec:  0.10,
		TurnWeights: map[geom.Direction]float64{
			geom.DirStraight: 0.60, geom.DirLeft: 0.22, geom.DirRight: 0.18,
		},
		ColorWeights: map[Color]float64{
			ColorBlack: 0.26, ColorWhite: 0.22, ColorSilver: 0.18,
			ColorBlue: 0.12, ColorRed: 0.12, ColorGreen: 0.05, ColorYellow: 0.05,
		},
		SpeederFrac: 0.05,
	}
}

// VCOCO approximates the V-COCO human-object-interaction image set used
// for Q6: independent still frames, most containing a person with a
// ball, a small fraction (the paper reports 4.9% positives) with an
// active hit interaction.
func VCOCO(seed uint64, images int) Scenario {
	return Scenario{
		Name: "vcoco", Seed: seed, FPS: 1, W: 640, H: 480,
		Duration: float64(images),
		Stills:   true,
		BallFrac: 0.6,
		HitFrac:  0.082, // 0.6*0.082 ≈ 4.9% positive frames
	}
}

// Pickup stages the §4.1 example scenario (Figures 9-10): a suspect
// person entering a parked red car which then drives away, against
// background traffic.
func Pickup(seed uint64, durationSec float64) Scenario {
	return Scenario{
		Name: "pickup", Seed: seed, FPS: 15, W: 1280, H: 720,
		Duration:       durationSec,
		VehiclesPerSec: 0.4,
		PersonsPerSec:  0.3,
		PlantSuspect:   true,
		PlantPickup:    true,
	}
}

// Retail approximates the Cisco DeepVision use cases (§5.4): an indoor
// scene with loiterers and a queue region, used by the loitering and
// queue-analysis examples.
func Retail(seed uint64, durationSec float64) Scenario {
	return Scenario{
		Name: "retail", Seed: seed, FPS: 10, W: 1280, H: 720,
		Duration:       durationSec,
		VehiclesPerSec: 0.01,
		PersonsPerSec:  0.8,
		WalkFrac:       0.5,
		LoiterFrac:     0.25,
	}
}
