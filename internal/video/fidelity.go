package video

// Multi-fidelity scan configs (DESIGN.md §12): a fidelity is one point
// of the (frame stride × resolution tier × detector tier) lattice a
// source can be scanned and archived at. The generator side lives here
// — per-fidelity ground truth derived from the same synthetic tracks
// that drive full-fidelity truth — so accuracy curves can be computed
// analytically in tests and calibrated empirically against archives
// (plan.ArchiveFidelity) without the two ever disagreeing about what a
// downsampled scan can see.

import "fmt"

// ResTier is the resolution a frame is decoded at before detection.
// Lower tiers shrink the decode and the detector input, which makes
// small objects fall below the detector's visibility floor.
type ResTier int

// Resolution tiers, full to quarter.
const (
	ResFull ResTier = iota
	ResHalf
	ResQuarter
)

// String names the tier for fidelity keys and manifests.
func (r ResTier) String() string {
	switch r {
	case ResFull:
		return "full"
	case ResHalf:
		return "half"
	case ResQuarter:
		return "quarter"
	}
	return fmt.Sprintf("res(%d)", int(r))
}

// minVisibleArea is the ground-truth box area (full-resolution pixels)
// below which an object is invisible to a detector running at the tier:
// at half resolution the 12×12 balls vanish, at quarter resolution
// pedestrians (26×64) go too, while every vehicle class stays visible.
func (r ResTier) minVisibleArea() float64 {
	switch r {
	case ResHalf:
		return 600
	case ResQuarter:
		return 2400
	}
	return 0
}

// VisibleAt reports whether an object of the given ground-truth box is
// large enough to survive decoding at the resolution tier. Boxes are
// always expressed in full-resolution coordinates; the tier only moves
// the visibility floor.
func VisibleAt(area float64, res ResTier) bool {
	return area >= res.minVisibleArea()
}

// Fidelity is one scan config of the lattice: process every Stride-th
// frame, decoded at Res, through Detector. The zero-ish full fidelity
// is {Stride: 1, Res: ResFull, Detector: <query's detector>}.
type Fidelity struct {
	// Stride processes frames 0, Stride, 2·Stride, …; must be >= 1.
	Stride int
	// Res is the decode resolution tier.
	Res ResTier
	// Detector is the model-zoo detector run at this fidelity.
	Detector string
}

// Key is the canonical fidelity name used in scan signatures, store
// manifests and metrics labels, e.g. "s4/half/yolov5s@half".
func (f Fidelity) Key() string {
	return fmt.Sprintf("s%d/%s/%s", f.NormStride(), f.Res, f.Detector)
}

// NormStride returns the stride with the >=1 floor applied.
func (f Fidelity) NormStride() int {
	if f.Stride < 1 {
		return 1
	}
	return f.Stride
}

// AlignedFrames counts the frames of [0, n) the fidelity actually
// scans: the stride-aligned indices.
func (f Fidelity) AlignedFrames(n int) int {
	s := f.NormStride()
	if n <= 0 {
		return 0
	}
	return (n + s - 1) / s
}

// LastAligned returns the greatest stride-aligned index <= i, the frame
// whose archived verdict a carry-forward replay answers frame i from.
func (f Fidelity) LastAligned(i int) int {
	s := f.NormStride()
	return i - i%s
}

// FidelityTruth is the per-frame class-presence ground truth as a scan
// at fidelity f would ideally observe it: on stride-aligned frames an
// object counts only when its box survives the resolution tier, and the
// verdict is carried forward across the skipped frames (the replay
// semantics of plan.RunFidelity). Element i answers "does frame i
// contain an object of class c, as seen through f".
func (v *Video) FidelityTruth(f Fidelity, c Class) []bool {
	out := make([]bool, len(v.Frames))
	last := false
	for i := range v.Frames {
		if i == f.LastAligned(i) {
			last = false
			for _, o := range v.Frames[i].Objects {
				if o.Class == c && VisibleAt(o.Box.Area(), f.Res) {
					last = true
					break
				}
			}
		}
		out[i] = last
	}
	return out
}

// FidelityTruthAccuracy is the analytic accuracy curve point for one
// clip: the fraction of frames whose f-fidelity presence verdict for
// class c agrees with the full-fidelity ground truth. This is what the
// empirical calibration (plan.ArchiveFidelity) estimates from archived
// detections; tests crosscheck the two.
func (v *Video) FidelityTruthAccuracy(f Fidelity, c Class) float64 {
	if len(v.Frames) == 0 {
		return 1
	}
	fid := v.FidelityTruth(f, c)
	agree := 0
	for i := range v.Frames {
		truth := false
		for _, o := range v.Frames[i].Objects {
			if o.Class == c {
				truth = true
				break
			}
		}
		if truth == fid[i] {
			agree++
		}
	}
	return float64(agree) / float64(len(v.Frames))
}
