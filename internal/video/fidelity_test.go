package video

// Unit suite for the fidelity lattice primitives (DESIGN.md §12): key
// normalization, stride arithmetic, the resolution visibility floor,
// and the per-fidelity ground truth the empirical calibration is
// crosschecked against.

import "testing"

func TestFidelityKeyAndStride(t *testing.T) {
	f := Fidelity{Stride: 4, Res: ResHalf, Detector: "yolov5s@half"}
	if f.Key() != "s4/half/yolov5s@half" {
		t.Errorf("Key = %q", f.Key())
	}
	// Stride 0 normalizes to 1, everywhere the stride is consumed.
	z := Fidelity{Res: ResQuarter, Detector: "d"}
	if z.NormStride() != 1 || z.Key() != "s1/quarter/d" {
		t.Errorf("zero stride: norm %d key %q", z.NormStride(), z.Key())
	}
	if got := f.AlignedFrames(10); got != 3 {
		t.Errorf("AlignedFrames(10) at stride 4 = %d, want 3 (frames 0,4,8)", got)
	}
	if f.AlignedFrames(0) != 0 || f.AlignedFrames(-5) != 0 {
		t.Error("AlignedFrames of an empty window must be 0")
	}
	if f.LastAligned(7) != 4 || f.LastAligned(8) != 8 || f.LastAligned(0) != 0 {
		t.Error("LastAligned wrong")
	}
	for tier, name := range map[ResTier]string{ResFull: "full", ResHalf: "half", ResQuarter: "quarter"} {
		if tier.String() != name {
			t.Errorf("ResTier(%d).String() = %q, want %q", tier, tier.String(), name)
		}
	}
	if ResTier(9).String() != "res(9)" {
		t.Errorf("out-of-range tier string %q", ResTier(9).String())
	}
}

func TestVisibilityFloorByTier(t *testing.T) {
	// 12x12 balls survive only full resolution; 26x64 pedestrians
	// vanish at quarter; vehicles survive every tier.
	cases := []struct {
		area                float64
		full, half, quarter bool
	}{
		{144, true, false, false}, // ball
		{1664, true, true, false}, // person
		{6000, true, true, true},  // sedan
	}
	for _, tc := range cases {
		if VisibleAt(tc.area, ResFull) != tc.full ||
			VisibleAt(tc.area, ResHalf) != tc.half ||
			VisibleAt(tc.area, ResQuarter) != tc.quarter {
			t.Errorf("area %.0f visibility (%v/%v/%v) wrong", tc.area,
				VisibleAt(tc.area, ResFull), VisibleAt(tc.area, ResHalf), VisibleAt(tc.area, ResQuarter))
		}
	}
}

func TestFidelityTruthCarryForward(t *testing.T) {
	v := CityFlow(7, 8).Generate()
	full := Fidelity{Stride: 1, Res: ResFull}
	truth := v.FidelityTruth(full, ClassCar)
	if len(truth) != len(v.Frames) {
		t.Fatalf("truth length %d, want %d", len(truth), len(v.Frames))
	}
	// At full fidelity the truth is exact presence, so the analytic
	// accuracy is 1.
	if acc := v.FidelityTruthAccuracy(full, ClassCar); acc != 1 {
		t.Errorf("full-fidelity accuracy %v, want 1", acc)
	}

	// At stride 4 every non-aligned frame repeats the verdict of its
	// last aligned frame.
	strided := Fidelity{Stride: 4, Res: ResFull}
	st := v.FidelityTruth(strided, ClassCar)
	for i := range st {
		if st[i] != st[strided.LastAligned(i)] {
			t.Fatalf("frame %d does not carry frame %d forward", i, strided.LastAligned(i))
		}
	}
	// Coarser fidelities are never more accurate than the exact one,
	// and accuracy stays a meaningful fraction.
	acc := v.FidelityTruthAccuracy(strided, ClassCar)
	if acc <= 0 || acc > 1 {
		t.Fatalf("strided accuracy %v out of range", acc)
	}

	// The quarter tier hides pedestrians (26x64 < the 2400 floor)
	// entirely: on a person-heavy clip the full-tier truth sees them,
	// the quarter-tier truth never does.
	retail := Retail(7, 8).Generate()
	present := 0
	for _, p := range retail.FidelityTruth(full, ClassPerson) {
		if p {
			present++
		}
	}
	if present == 0 {
		t.Fatal("retail clip generated no visible persons")
	}
	quarter := Fidelity{Stride: 1, Res: ResQuarter}
	for i, p := range retail.FidelityTruth(quarter, ClassPerson) {
		if p {
			t.Fatalf("frame %d: person visible at quarter resolution", i)
		}
	}

	// Empty clip: accuracy degenerates to 1, not NaN.
	empty := &Video{}
	if empty.FidelityTruthAccuracy(full, ClassCar) != 1 {
		t.Error("empty clip accuracy should be 1")
	}
}
