package video

// Cross-camera scenario generation: a FleetScenario materializes ONE
// shared entity population into several correlated clips — the same
// cars and persons reappearing on different cameras with per-camera
// timing offsets (travel time between views) and per-camera viewpoints
// (each camera renders its own trajectory for the entity). This gives
// the fleet layer ground truth for global re-identification: every
// entity carries one global id and one appearance FeatureID across all
// cameras, while per-camera ground-truth track ids are assigned
// independently per clip — exactly the situation a re-ID registry must
// untangle.

import (
	"fmt"

	"vqpy/internal/geom"
	"vqpy/internal/sim"
)

// FleetScenario configures the correlated multi-camera generator. The
// Base scenario supplies the shared parameters (seed, duration, frame
// rate, spawn rates, attribute weights); each camera view is derived
// from it. Zero values get defaults in Generate, and the same
// FleetScenario always produces the same FleetClip.
type FleetScenario struct {
	// Base is the single-camera scenario every view derives from.
	Base Scenario
	// Cameras is the number of correlated views (default 3).
	Cameras int
	// MaxOffsetSec bounds the per-camera timing offset of a traveling
	// entity: the travel time between two views (default 4s).
	MaxOffsetSec float64
	// TravelFrac is the fraction of entities that appear on more than
	// one camera (default 0.5). Non-travelers stay on their home view.
	TravelFrac float64
	// PlantTraveler plants one red sedan that visits every camera in
	// order — a guaranteed cross-camera entity for walkthroughs and the
	// fleet bench gate.
	PlantTraveler bool
}

// FleetClip is a generated multi-camera clip set plus its re-ID ground
// truth.
type FleetClip struct {
	// Videos holds one correlated clip per camera, all sharing FPS and
	// duration so the fleet engine can feed them in lockstep.
	Videos []*Video
	// GlobalOf maps, per camera, the clip's ground-truth track id to the
	// global entity id — the reference a re-ID evaluation scores
	// against. Global ids start at 1 and are shared across cameras.
	GlobalOf []map[int]int
	// Entities is the population size (the number of distinct global
	// ids).
	Entities int
	// PlantedGlobalID is the planted traveler's global id, 0 when no
	// traveler was planted.
	PlantedGlobalID int
}

// fleetEntity is one member of the shared population: global identity,
// intrinsic appearance, and its per-camera visit schedule.
type fleetEntity struct {
	gid       int
	class     Class
	color     Color
	kind      VehicleKind
	plate     string
	featureID int
	w, h      float64
	speed     float64
	walking   bool

	spawn   int // home-camera spawn frame
	visits  []bool
	offsets []int // per-camera spawn offset in frames
}

// applyDefaults fills unset fleet knobs.
func (fs *FleetScenario) applyDefaults() {
	fs.Base.applyDefaults()
	if fs.Cameras <= 0 {
		fs.Cameras = 3
	}
	if fs.MaxOffsetSec <= 0 {
		fs.MaxOffsetSec = 4
	}
	if fs.TravelFrac <= 0 {
		fs.TravelFrac = 0.5
	}
}

// Generate materializes the fleet scenario: one entity population,
// Cameras correlated clips. Generation is pure — all randomness flows
// from the base scenario seed.
func (fs FleetScenario) Generate() *FleetClip {
	fs.applyDefaults()
	base := fs.Base
	rng := sim.NewRNG(base.Seed ^ 0xF1EE7_C0FFEE)
	frames := base.frameCount()

	entities := fs.genPopulation(rng, frames)
	planted := 0
	if fs.PlantTraveler {
		e := fs.plantTraveler(rng, len(entities)+1, frames)
		entities = append(entities, e)
		planted = e.gid
	}

	clip := &FleetClip{
		Videos:          make([]*Video, fs.Cameras),
		GlobalOf:        make([]map[int]int, fs.Cameras),
		Entities:        len(entities),
		PlantedGlobalID: planted,
	}
	for c := 0; c < fs.Cameras; c++ {
		camSc := base
		camSc.Name = fmt.Sprintf("%s-cam%d", base.Name, c)
		// Each camera renders its own viewpoint: trajectories come from
		// a camera-specific generator stream, so the same entity crosses
		// different cameras along different paths.
		camRng := sim.NewRNG(base.Seed ^ (0xCA11_0000 + uint64(c)*0x9E3779B9))
		v := camSc.emptyVideo(frames)
		v.Name = camSc.Name
		clip.GlobalOf[c] = make(map[int]int)
		nextTrack := 1
		for _, e := range entities {
			if !e.visits[c] {
				continue
			}
			tr := fs.cameraTrack(camRng, &camSc, e, c, frames)
			tr.id = nextTrack
			camSc.materialize(v, tr)
			if len(v.Tracks[tr.id]) == 0 {
				// The offset pushed the visit past the clip; it never
				// became visible on this camera.
				continue
			}
			clip.GlobalOf[c][tr.id] = e.gid
			nextTrack++
		}
		clip.Videos[c] = v
	}
	return clip
}

// genPopulation spawns the shared entity set from the base scenario's
// rates and attribute weights, then schedules each entity's camera
// visits.
func (fs *FleetScenario) genPopulation(rng *sim.RNG, frames int) []*fleetEntity {
	base := &fs.Base
	var out []*fleetEntity
	gid := 1
	pVehicle := base.VehiclesPerSec / float64(base.FPS)
	pPerson := base.PersonsPerSec / float64(base.FPS)
	for f := 0; f < frames; f++ {
		if rng.Bool(pVehicle) {
			e := fs.newEntity(rng, gid, f)
			out = append(out, e)
			gid++
		}
		if rng.Bool(pPerson) {
			e := fs.newPersonEntity(rng, gid, f)
			out = append(out, e)
			gid++
		}
	}
	return out
}

// newEntity creates one vehicle entity with a visit schedule.
func (fs *FleetScenario) newEntity(rng *sim.RNG, gid, spawn int) *fleetEntity {
	base := &fs.Base
	kind := weightedKind(rng, base.KindWeights)
	w, h := 90.0, 58.0
	switch kind {
	case KindBusKind:
		w, h = 170, 75
	case KindTruckKind:
		w, h = 150, 80
	case KindSUV:
		w, h = 100, 66
	case KindVan:
		w, h = 110, 70
	}
	speed := rng.Range(base.SpeedRange[0], base.SpeedRange[1])
	if rng.Bool(base.SpeederFrac) {
		speed = SpeedingThreshold + rng.Range(2, 8)
	}
	e := &fleetEntity{
		gid:       gid,
		class:     vehicleClass(kind),
		color:     weightedColor(rng, base.ColorWeights),
		kind:      kind,
		plate:     synthPlate(rng),
		featureID: fleetFeatureID(gid),
		w:         w, h: h,
		speed: speed,
		spawn: spawn,
	}
	fs.scheduleVisits(rng, e)
	return e
}

// newPersonEntity creates one pedestrian entity with a visit schedule.
func (fs *FleetScenario) newPersonEntity(rng *sim.RNG, gid, spawn int) *fleetEntity {
	e := &fleetEntity{
		gid:       gid,
		class:     ClassPerson,
		featureID: fleetFeatureID(gid),
		w:         26, h: 64,
		speed:   rng.Range(1.5, 3),
		walking: rng.Bool(fs.Base.WalkFrac),
		spawn:   spawn,
	}
	fs.scheduleVisits(rng, e)
	return e
}

// fleetFeatureID derives a globally unique appearance key for an
// entity. The offset keeps fleet feature ids disjoint from the
// single-camera generator's person feature space.
func fleetFeatureID(gid int) int { return 1<<20 + gid }

// scheduleVisits assigns the entity's home camera plus, for travelers,
// later visits with cumulative travel offsets.
func (fs *FleetScenario) scheduleVisits(rng *sim.RNG, e *fleetEntity) {
	e.visits = make([]bool, fs.Cameras)
	e.offsets = make([]int, fs.Cameras)
	home := rng.Intn(fs.Cameras)
	e.visits[home] = true
	if fs.Cameras == 1 || !rng.Bool(fs.TravelFrac) {
		return
	}
	// Travelers sweep forward from the home camera (wrapping), each hop
	// adding travel time; at least one extra camera is visited.
	hops := 1 + rng.Intn(fs.Cameras-1)
	offset := 0.0
	for i := 1; i <= hops; i++ {
		offset += rng.Range(fs.MaxOffsetSec*0.25, fs.MaxOffsetSec)
		cam := (home + i) % fs.Cameras
		e.visits[cam] = true
		e.offsets[cam] = int(offset * float64(fs.Base.FPS))
	}
}

// plantTraveler builds the guaranteed cross-camera entity: a red sedan
// spawning early and visiting every camera in order.
func (fs *FleetScenario) plantTraveler(rng *sim.RNG, gid, frames int) *fleetEntity {
	e := &fleetEntity{
		gid:       gid,
		class:     ClassCar,
		color:     ColorRed,
		kind:      KindSedan,
		plate:     "FLT-001",
		featureID: fleetFeatureID(gid),
		w:         95, h: 60,
		speed: rng.Range(fs.Base.SpeedRange[0], fs.Base.SpeedRange[1]),
		spawn: frames / 10,
	}
	e.visits = make([]bool, fs.Cameras)
	e.offsets = make([]int, fs.Cameras)
	hop := fs.MaxOffsetSec * 0.5
	for c := 0; c < fs.Cameras; c++ {
		e.visits[c] = true
		e.offsets[c] = int(float64(c) * hop * float64(fs.Base.FPS))
	}
	return e
}

// cameraTrack materializes one entity's visit to one camera as a track:
// shared identity and intrinsics, camera-specific trajectory and spawn
// offset. The returned track still needs its per-camera id assigned.
func (fs *FleetScenario) cameraTrack(camRng *sim.RNG, camSc *Scenario, e *fleetEntity, cam, frames int) *track {
	W, H := float64(camSc.W), float64(camSc.H)
	spawn := e.spawn + e.offsets[cam]
	var path []geom.Point
	var life int
	dir := geom.DirUnknown
	if e.class == ClassPerson {
		y := H * camRng.Range(0.58, 0.64)
		if camRng.Bool(0.5) {
			path = []geom.Point{{X: W * 0.25, Y: y}, {X: W * 0.75, Y: y}}
		} else {
			path = []geom.Point{{X: W * 0.75, Y: y}, {X: W * 0.25, Y: y}}
		}
		life = int(pathLength(path) / e.speed)
	} else {
		dir = weightedTurn(camRng, camSc.TurnWeights)
		path = intersectionPath(camRng, W, H, dir)
		life = int(pathLength(path) / e.speed)
	}
	if life < 8 {
		life = 8
	}
	if life > frames {
		life = frames
	}
	return &track{
		class: e.class, color: e.color, kind: e.kind,
		plate: e.plate, featureID: e.featureID,
		spawnFrame: spawn, life: life, path: path, dir: dir,
		w: e.w, h: e.h, walking: e.walking, pairTrack: -1,
	}
}

// FleetIntersections is the multi-camera preset used by the fleet
// experiments and walkthroughs: correlated CityFlow-style intersections
// sharing one entity population, with a planted red sedan guaranteed to
// cross every camera.
func FleetIntersections(seed uint64, durationSec float64, cameras int) FleetScenario {
	return FleetScenario{
		Base:          CityFlow(seed, durationSec),
		Cameras:       cameras,
		PlantTraveler: true,
	}
}
