package video

import (
	"reflect"
	"testing"
)

// TestFleetGenerateDeterministic pins generation purity: the same
// FleetScenario yields byte-identical clips and ground truth.
func TestFleetGenerateDeterministic(t *testing.T) {
	fs := FleetIntersections(7, 8, 3)
	a, b := fs.Generate(), fs.Generate()
	if a.Entities != b.Entities {
		t.Fatalf("entity counts differ: %d vs %d", a.Entities, b.Entities)
	}
	if !reflect.DeepEqual(a.GlobalOf, b.GlobalOf) {
		t.Fatal("ground-truth global-id maps differ across runs")
	}
	for c := range a.Videos {
		if !reflect.DeepEqual(a.Videos[c].Frames, b.Videos[c].Frames) {
			t.Fatalf("camera %d frames differ across runs", c)
		}
	}
}

// TestFleetGenerateShape checks the structural contract: N correlated
// clips sharing FPS and duration, per-camera track ids all mapped to
// global ids, and camera names derived from the base.
func TestFleetGenerateShape(t *testing.T) {
	fs := FleetIntersections(11, 10, 3)
	clip := fs.Generate()
	if len(clip.Videos) != 3 || len(clip.GlobalOf) != 3 {
		t.Fatalf("want 3 cameras, got %d videos / %d maps", len(clip.Videos), len(clip.GlobalOf))
	}
	for c, v := range clip.Videos {
		if v.FPS != clip.Videos[0].FPS || len(v.Frames) != len(clip.Videos[0].Frames) {
			t.Fatalf("camera %d not in lockstep with camera 0", c)
		}
		if v.Name == clip.Videos[(c+1)%3].Name {
			t.Fatalf("camera names must be distinct, got %q twice", v.Name)
		}
		// Every ground-truth track id present on the camera must be
		// mapped to a global id.
		for id := range v.Tracks {
			if _, ok := clip.GlobalOf[c][id]; !ok {
				t.Errorf("camera %d track %d has no global id", c, id)
			}
		}
	}
}

// TestFleetTravelersCrossCameras verifies the correlation that makes
// re-ID meaningful: some global ids (including the planted traveler)
// appear on at least two cameras, with the later visits time-shifted.
func TestFleetTravelersCrossCameras(t *testing.T) {
	fs := FleetIntersections(23, 12, 3)
	clip := fs.Generate()
	if clip.PlantedGlobalID == 0 {
		t.Fatal("preset should plant a traveler")
	}
	camsOf := make(map[int]map[int]bool) // gid -> set of cameras
	for c, m := range clip.GlobalOf {
		for _, gid := range m {
			if camsOf[gid] == nil {
				camsOf[gid] = make(map[int]bool)
			}
			camsOf[gid][c] = true
		}
	}
	travelers := 0
	for _, cams := range camsOf {
		if len(cams) >= 2 {
			travelers++
		}
	}
	if travelers == 0 {
		t.Fatal("no entity appears on two cameras")
	}
	if len(camsOf[clip.PlantedGlobalID]) != 3 {
		t.Fatalf("planted traveler on %d cameras, want 3", len(camsOf[clip.PlantedGlobalID]))
	}
	// The planted traveler's visits must be time-shifted camera to
	// camera (travel time between views).
	first := func(c int) int {
		for id, gid := range clip.GlobalOf[c] {
			if gid == clip.PlantedGlobalID {
				return clip.Videos[c].Tracks[id][0].Frame
			}
		}
		return -1
	}
	if f0, f1 := first(0), first(1); f0 < 0 || f1 <= f0 {
		t.Fatalf("planted traveler not time-shifted: cam0 first frame %d, cam1 %d", f0, f1)
	}
}

// TestFleetFeatureIDsSharedAcrossCameras checks that one entity carries
// one appearance key everywhere — the property the simulated re-ID
// embedder keys on — while per-camera track ids are assigned
// independently.
func TestFleetFeatureIDsSharedAcrossCameras(t *testing.T) {
	clip := FleetIntersections(31, 10, 2).Generate()
	featureOf := func(c, trackID int) int {
		for i := range clip.Videos[c].Frames {
			for _, o := range clip.Videos[c].Frames[i].Objects {
				if o.TrackID == trackID {
					return o.FeatureID
				}
			}
		}
		return 0
	}
	byGid := make(map[int]int)
	checked := 0
	for c, m := range clip.GlobalOf {
		for id, gid := range m {
			f := featureOf(c, id)
			if f == 0 {
				t.Fatalf("camera %d track %d has no feature id", c, id)
			}
			if prev, ok := byGid[gid]; ok {
				checked++
				if prev != f {
					t.Fatalf("global id %d has feature ids %d and %d", gid, prev, f)
				}
			} else {
				byGid[gid] = f
			}
		}
	}
	if checked == 0 {
		t.Fatal("no cross-camera entity to check")
	}
}
