package video

import "vqpy/internal/geom"

// RasterW and RasterH fix the pixel-grid dimensions used for all frames.
// The grid is deliberately small: simulated model cost is governed by the
// virtual-time ledger, and the raster exists so that property models
// (color classification, frame differencing) operate on genuine pixel
// data rather than reading labels.
const (
	RasterW = 128
	RasterH = 72
)

// Raster is a small RGB pixel grid rendered from a frame's ground truth.
// Pixels are packed 0xRRGGBB values, row-major.
type Raster struct {
	W, H int
	Pix  []uint32
}

// At returns the pixel at (x, y); out-of-range coordinates return 0.
func (r *Raster) At(x, y int) uint32 {
	if x < 0 || y < 0 || x >= r.W || y >= r.H {
		return 0
	}
	return r.Pix[y*r.W+x]
}

// set writes the pixel at (x, y), ignoring out-of-range coordinates.
func (r *Raster) set(x, y int, v uint32) {
	if x < 0 || y < 0 || x >= r.W || y >= r.H {
		return
	}
	r.Pix[y*r.W+x] = v
}

// backgroundAt produces a deterministic textured background pixel. The
// texture varies spatially but not temporally, so frame differencing sees
// static background, and it darkens at night.
func backgroundAt(x, y int, night bool) uint32 {
	// Cheap spatial hash for mild texture.
	h := uint32(x*7919+y*104729) ^ uint32(x*y+13)
	base := uint32(0x60 + (h&0x0F)*2) // 0x60..0x7E gray
	if night {
		base /= 3
	}
	return base<<16 | base<<8 | base
}

// Render rasterizes the frame: textured background plus one solid block
// per object, painted in the object's color (or a class-typical tone for
// colorless objects). Objects are painted in slice order, so later
// objects occlude earlier ones, loosely approximating depth.
func (f *Frame) Render() *Raster {
	r := &Raster{W: RasterW, H: RasterH, Pix: make([]uint32, RasterW*RasterH)}
	night := f.Scene().Night
	for y := 0; y < RasterH; y++ {
		for x := 0; x < RasterW; x++ {
			r.Pix[y*RasterW+x] = backgroundAt(x, y, night)
		}
	}
	sx := float64(RasterW) / float64(f.W)
	sy := float64(RasterH) / float64(f.H)
	for _, o := range f.Objects {
		rgb := o.Color.RGB()
		if o.Color == ColorNone {
			switch o.Class {
			case ClassPerson:
				// A gray-brown clothing tone whose nearest palette
				// entry is silver, not red — person pixels bleeding
				// into a vehicle crop must not flip its color class.
				rgb = 0x8A8270
			case ClassBall:
				rgb = 0xE07820
			default:
				rgb = 0x707880
			}
		}
		if night {
			rgb = (rgb >> 1) & 0x7F7F7F
		}
		b := o.Box
		x1, y1 := int(b.X1*sx), int(b.Y1*sy)
		x2, y2 := int(b.X2*sx), int(b.Y2*sy)
		if x2 <= x1 {
			x2 = x1 + 1
		}
		if y2 <= y1 {
			y2 = y1 + 1
		}
		for y := y1; y < y2; y++ {
			for x := x1; x < x2; x++ {
				r.set(x, y, rgb)
			}
		}
	}
	return r
}

// CropStats summarizes the pixels inside a crop region.
type CropStats struct {
	MeanR, MeanG, MeanB float64
	N                   int
}

// Crop computes pixel statistics for the raster region corresponding to
// box (given in frame coordinates for a frame of size fw x fh).
func (r *Raster) Crop(box geom.BBox, fw, fh int) CropStats {
	sx := float64(r.W) / float64(fw)
	sy := float64(r.H) / float64(fh)
	x1, y1 := int(box.X1*sx), int(box.Y1*sy)
	x2, y2 := int(box.X2*sx), int(box.Y2*sy)
	if x1 < 0 {
		x1 = 0
	}
	if y1 < 0 {
		y1 = 0
	}
	if x2 > r.W {
		x2 = r.W
	}
	if y2 > r.H {
		y2 = r.H
	}
	var s CropStats
	for y := y1; y < y2; y++ {
		for x := x1; x < x2; x++ {
			p := r.Pix[y*r.W+x]
			s.MeanR += float64(p >> 16 & 0xFF)
			s.MeanG += float64(p >> 8 & 0xFF)
			s.MeanB += float64(p & 0xFF)
			s.N++
		}
	}
	if s.N > 0 {
		s.MeanR /= float64(s.N)
		s.MeanG /= float64(s.N)
		s.MeanB /= float64(s.N)
	}
	return s
}

// DominantColor matches the crop's mean color against the palette and
// returns the nearest Color. Crops with no pixels return ColorNone.
func (s CropStats) DominantColor() Color {
	if s.N == 0 {
		return ColorNone
	}
	best, bestD := ColorNone, 1e18
	for _, c := range AllColors {
		rgb := c.RGB()
		dr := s.MeanR - float64(rgb>>16&0xFF)
		dg := s.MeanG - float64(rgb>>8&0xFF)
		db := s.MeanB - float64(rgb&0xFF)
		d := dr*dr + dg*dg + db*db
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Diff returns the mean absolute per-channel difference between two
// rasters of identical dimensions, the signal consumed by
// differencing-based frame filters. Mismatched dimensions return the
// maximum difference.
func Diff(a, b *Raster) float64 {
	if a == nil || b == nil || a.W != b.W || a.H != b.H || len(a.Pix) != len(b.Pix) {
		return 255
	}
	var total float64
	for i := range a.Pix {
		pa, pb := a.Pix[i], b.Pix[i]
		dr := int(pa>>16&0xFF) - int(pb>>16&0xFF)
		dg := int(pa>>8&0xFF) - int(pb>>8&0xFF)
		db := int(pa&0xFF) - int(pb&0xFF)
		if dr < 0 {
			dr = -dr
		}
		if dg < 0 {
			dg = -dg
		}
		if db < 0 {
			db = -db
		}
		total += float64(dr+dg+db) / 3
	}
	return total / float64(len(a.Pix))
}
