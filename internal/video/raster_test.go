package video

import (
	"testing"

	"vqpy/internal/geom"
)

func oneObjectFrame(c Color, box geom.BBox) *Frame {
	return &Frame{
		Index: 0, W: 1280, H: 720,
		Objects: []Object{{TrackID: 1, Class: ClassCar, Color: c, Kind: KindSedan, Box: box}},
		scene:   &Scene{},
	}
}

func TestRenderDimensions(t *testing.T) {
	f := oneObjectFrame(ColorRed, geom.Rect(100, 100, 200, 150))
	r := f.Render()
	if r.W != RasterW || r.H != RasterH || len(r.Pix) != RasterW*RasterH {
		t.Fatalf("raster dims wrong: %dx%d len=%d", r.W, r.H, len(r.Pix))
	}
}

func TestRenderDeterministic(t *testing.T) {
	f := oneObjectFrame(ColorBlue, geom.Rect(300, 200, 150, 100))
	a, b := f.Render(), f.Render()
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("render is not deterministic")
		}
	}
}

func TestDominantColorRecovery(t *testing.T) {
	// The dominant color of a crop over a painted object should match
	// the object color for every palette entry.
	for _, c := range AllColors {
		box := geom.Rect(400, 300, 300, 220)
		f := oneObjectFrame(c, box)
		r := f.Render()
		got := r.Crop(box, f.W, f.H).DominantColor()
		if got != c {
			t.Errorf("color %v recovered as %v", c, got)
		}
	}
}

func TestCropEmpty(t *testing.T) {
	f := oneObjectFrame(ColorRed, geom.Rect(100, 100, 100, 100))
	r := f.Render()
	s := r.Crop(geom.Rect(-500, -500, 1, 1), f.W, f.H)
	if s.N != 0 {
		t.Errorf("out-of-frame crop has %d pixels", s.N)
	}
	if s.DominantColor() != ColorNone {
		t.Error("empty crop should have no dominant color")
	}
}

func TestAtBounds(t *testing.T) {
	f := oneObjectFrame(ColorRed, geom.Rect(0, 0, 100, 100))
	r := f.Render()
	if r.At(-1, 0) != 0 || r.At(0, -1) != 0 || r.At(RasterW, 0) != 0 || r.At(0, RasterH) != 0 {
		t.Error("out-of-range At should return 0")
	}
}

func TestDiffStaticVsMoving(t *testing.T) {
	bg := &Frame{Index: 0, W: 1280, H: 720, scene: &Scene{}}
	same := &Frame{Index: 1, W: 1280, H: 720, scene: &Scene{}}
	moved := oneObjectFrame(ColorWhite, geom.Rect(500, 300, 200, 150))

	d0 := Diff(bg.Render(), same.Render())
	if d0 != 0 {
		t.Errorf("static background diff = %v, want 0", d0)
	}
	d1 := Diff(bg.Render(), moved.Render())
	if d1 <= d0 {
		t.Errorf("object appearance diff %v not above static %v", d1, d0)
	}
}

func TestDiffMismatched(t *testing.T) {
	a := &Raster{W: 2, H: 2, Pix: make([]uint32, 4)}
	b := &Raster{W: 3, H: 2, Pix: make([]uint32, 6)}
	if Diff(a, b) != 255 {
		t.Error("mismatched rasters should diff to 255")
	}
	if Diff(nil, a) != 255 {
		t.Error("nil raster should diff to 255")
	}
}

func TestNightDarkens(t *testing.T) {
	day := oneObjectFrame(ColorWhite, geom.Rect(500, 300, 200, 150))
	night := oneObjectFrame(ColorWhite, geom.Rect(500, 300, 200, 150))
	night.scene = &Scene{Night: true}
	sd := day.Render().Crop(geom.Rect(500, 300, 200, 150), 1280, 720)
	sn := night.Render().Crop(geom.Rect(500, 300, 200, 150), 1280, 720)
	if sn.MeanR >= sd.MeanR {
		t.Errorf("night not darker: day %v night %v", sd.MeanR, sn.MeanR)
	}
}

func TestOcclusionOrder(t *testing.T) {
	// Later objects paint over earlier ones.
	box := geom.Rect(400, 300, 200, 150)
	f := &Frame{
		Index: 0, W: 1280, H: 720, scene: &Scene{},
		Objects: []Object{
			{TrackID: 1, Class: ClassCar, Color: ColorRed, Box: box},
			{TrackID: 2, Class: ClassCar, Color: ColorBlue, Box: box},
		},
	}
	got := f.Render().Crop(box, f.W, f.H).DominantColor()
	if got != ColorBlue {
		t.Errorf("occluding object color = %v, want blue", got)
	}
}

func TestSceneDefault(t *testing.T) {
	f := &Frame{Index: 0, W: 100, H: 100}
	if f.Scene() == nil {
		t.Fatal("Scene() returned nil")
	}
	if f.Scene().Night {
		t.Error("default scene should be day")
	}
}
