package video

import (
	"fmt"
	"math"

	"vqpy/internal/geom"
	"vqpy/internal/sim"
)

// Scenario configures the deterministic generator. Zero values are filled
// with sensible defaults by Generate; the same Scenario and seed always
// produce the same Video.
type Scenario struct {
	Name     string
	Seed     uint64
	FPS      int
	W, H     int
	Duration float64 // seconds

	// VehiclesPerSec and PersonsPerSec are mean spawn rates.
	VehiclesPerSec float64
	PersonsPerSec  float64

	// ColorWeights and KindWeights bias intrinsic vehicle attributes;
	// empty maps use a default urban mix where green is rare and black
	// common, matching the rarity structure CityFlow queries rely on.
	ColorWeights map[Color]float64
	KindWeights  map[VehicleKind]float64

	// TurnWeights biases vehicle motion (straight / left / right).
	TurnWeights map[geom.Direction]float64

	// SpeedRange is the vehicle cruise speed in pixels/frame;
	// SpeederFrac is the fraction of vehicles exceeding the speeding
	// threshold used by speed queries.
	SpeedRange  [2]float64
	SpeederFrac float64

	// WalkFrac is the fraction of persons who walk (vs stand);
	// LoiterFrac the fraction who loiter in place for a long dwell.
	WalkFrac   float64
	LoiterFrac float64

	// BallFrac is the fraction of persons accompanied by a ball, and
	// HitFrac the fraction of those that hit it during the clip.
	BallFrac float64
	HitFrac  float64

	// PlantSuspect plants one person track flagged as the ReID target,
	// and PlantPickup additionally stages that person entering a red
	// car (the Figure 9/10 query scenario).
	PlantSuspect bool
	PlantPickup  bool

	// Stills generates independent single-object-set frames (V-COCO
	// style images) instead of continuous motion.
	Stills bool

	// Night renders a darker scene.
	Night bool
}

func (s *Scenario) applyDefaults() {
	if s.FPS == 0 {
		s.FPS = 15
	}
	if s.W == 0 {
		s.W = 1280
	}
	if s.H == 0 {
		s.H = 720
	}
	if s.Duration == 0 {
		s.Duration = 60
	}
	if s.VehiclesPerSec == 0 {
		s.VehiclesPerSec = 0.5
	}
	if s.ColorWeights == nil {
		s.ColorWeights = map[Color]float64{
			ColorBlack: 0.26, ColorWhite: 0.22, ColorSilver: 0.18,
			ColorBlue: 0.12, ColorRed: 0.12, ColorGreen: 0.05, ColorYellow: 0.05,
		}
	}
	if s.KindWeights == nil {
		s.KindWeights = map[VehicleKind]float64{
			KindSedan: 0.45, KindSUV: 0.28, KindHatchback: 0.12,
			KindVan: 0.08, KindBusKind: 0.04, KindTruckKind: 0.03,
		}
	}
	if s.TurnWeights == nil {
		s.TurnWeights = map[geom.Direction]float64{
			geom.DirStraight: 0.7, geom.DirLeft: 0.15, geom.DirRight: 0.15,
		}
	}
	if s.SpeedRange == [2]float64{} {
		s.SpeedRange = [2]float64{4, 9}
	}
	if s.WalkFrac == 0 {
		s.WalkFrac = 0.8
	}
}

// SpeedingThreshold is the ground-truth speed (pixels/frame) above which
// a vehicle counts as speeding; speeder tracks are generated above it and
// normal tracks below it.
const SpeedingThreshold = 12.0

// track is a fully precomputed object trajectory.
type track struct {
	id        int
	class     Class
	color     Color
	kind      VehicleKind
	plate     string
	featureID int
	suspect   bool

	spawnFrame int
	life       int // frames
	path       []geom.Point
	w, h       float64
	dir        geom.Direction
	walking    bool
	loiter     bool

	hasBall             bool
	hitStart, hitEnd    int // frame offsets with ball-hit active
	enterStart, enterTo int // frame offsets while entering a car
	pairTrack           int // companion track id (ball or car), -1 if none
}

// posAt returns the track centroid at frame offset t in [0, life).
func (tr *track) posAt(t int) geom.Point {
	if len(tr.path) == 0 {
		return geom.Point{}
	}
	if len(tr.path) == 1 || tr.life <= 1 {
		return tr.path[0]
	}
	// The path is sampled uniformly over the lifetime.
	f := float64(t) / float64(tr.life-1)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	scaled := f * float64(len(tr.path)-1)
	i := int(scaled)
	if i >= len(tr.path)-1 {
		return tr.path[len(tr.path)-1]
	}
	frac := scaled - float64(i)
	a, b := tr.path[i], tr.path[i+1]
	return geom.Point{X: a.X + (b.X-a.X)*frac, Y: a.Y + (b.Y-a.Y)*frac}
}

// frameCount converts the scenario duration into a frame count (always
// at least one frame).
func (s *Scenario) frameCount() int {
	n := int(s.Duration * float64(s.FPS))
	if n < 1 {
		n = 1
	}
	return n
}

// emptyVideo builds the frame shell tracks are materialized into: n
// frames with capture metadata and the static scene context, but no
// objects yet. Shared by the single-camera generator and the fleet
// generator, so every camera's shell is constructed identically.
func (s *Scenario) emptyVideo(n int) *Video {
	scene := &Scene{
		Night:     s.Night,
		Crosswalk: geom.Rect(float64(s.W)*0.3, float64(s.H)*0.55, float64(s.W)*0.4, float64(s.H)*0.12),
	}
	v := &Video{
		Name: s.Name, FPS: s.FPS, W: s.W, H: s.H,
		Tracks: make(map[int][]TrackPoint),
		scene:  scene,
	}
	v.Frames = make([]Frame, n)
	for i := 0; i < n; i++ {
		v.Frames[i] = Frame{
			Index: i, TimeSec: float64(i) / float64(s.FPS),
			W: s.W, H: s.H, scene: scene,
		}
	}
	return v
}

// Generate materializes the scenario into a Video. Generation is pure:
// all randomness flows from the scenario seed.
func (s Scenario) Generate() *Video {
	s.applyDefaults()
	rng := sim.NewRNG(s.Seed ^ 0xC0FFEE123456789)
	n := s.frameCount()

	var tracks []*track
	if s.Stills {
		tracks = s.genStills(rng, n)
	} else {
		tracks = s.genMotion(rng, n)
	}

	v := s.emptyVideo(n)
	for _, tr := range tracks {
		s.materialize(v, tr)
	}
	return v
}

// genMotion creates continuous-motion tracks: vehicles through an
// intersection, pedestrians, optional planted events.
func (s *Scenario) genMotion(rng *sim.RNG, frames int) []*track {
	var tracks []*track
	nextID := 1

	// Vehicles: spawn times form a thinned Bernoulli process per frame.
	pVehicle := s.VehiclesPerSec / float64(s.FPS)
	pPerson := s.PersonsPerSec / float64(s.FPS)
	for f := 0; f < frames; f++ {
		if rng.Bool(pVehicle) {
			tr := s.newVehicle(rng, nextID, f, frames)
			tracks = append(tracks, tr)
			nextID++
		}
		if rng.Bool(pPerson) {
			trs := s.newPerson(rng, nextID, f, frames)
			tracks = append(tracks, trs...)
			nextID += len(trs)
		}
	}

	if s.PlantSuspect || s.PlantPickup {
		trs := s.plantPickup(rng, nextID, frames)
		tracks = append(tracks, trs...)
	}
	return tracks
}

// newVehicle synthesizes one vehicle track.
func (s *Scenario) newVehicle(rng *sim.RNG, id, spawn, frames int) *track {
	color := weightedColor(rng, s.ColorWeights)
	kind := weightedKind(rng, s.KindWeights)
	turn := weightedTurn(rng, s.TurnWeights)
	speed := rng.Range(s.SpeedRange[0], s.SpeedRange[1])
	if rng.Bool(s.SpeederFrac) {
		speed = SpeedingThreshold + rng.Range(2, 8)
	}
	w, h := 90.0, 58.0
	switch kind {
	case KindBusKind:
		w, h = 170, 75
	case KindTruckKind:
		w, h = 150, 80
	case KindSUV:
		w, h = 100, 66
	case KindVan:
		w, h = 110, 70
	}
	path := intersectionPath(rng, float64(s.W), float64(s.H), turn)
	length := pathLength(path)
	life := int(length / speed)
	if life < 8 {
		life = 8
	}
	if life > frames*2 {
		life = frames * 2
	}
	return &track{
		id: id, class: vehicleClass(kind), color: color, kind: kind,
		plate: synthPlate(rng), spawnFrame: spawn, life: life,
		featureID: vehicleFeatureID(id),
		path:      path, w: w, h: h, dir: turn, pairTrack: -1,
	}
}

// vehicleFeatureID derives a per-vehicle appearance key without
// consuming generator randomness (an extra draw here would shift every
// later sample and change existing clips). Distinct vehicles must embed
// near-orthogonally for appearance search over single-camera archives;
// the offset keeps the space disjoint from person features and from the
// fleet generator's 1<<20 range.
func vehicleFeatureID(id int) int { return 1<<18 + id }

func vehicleClass(k VehicleKind) Class {
	switch k {
	case KindBusKind:
		return ClassBus
	case KindTruckKind:
		return ClassTruck
	}
	return ClassCar
}

// newPerson synthesizes a pedestrian track, possibly with an attached
// ball track.
func (s *Scenario) newPerson(rng *sim.RNG, id, spawn, frames int) []*track {
	W, H := float64(s.W), float64(s.H)
	walking := rng.Bool(s.WalkFrac)
	loiter := rng.Bool(s.LoiterFrac)
	var path []geom.Point
	var life int
	switch {
	case loiter:
		// Small random walk inside a corner zone, long dwell.
		cx, cy := W*rng.Range(0.05, 0.2), H*rng.Range(0.1, 0.4)
		for i := 0; i < 12; i++ {
			path = append(path, geom.Point{X: cx + rng.Range(-15, 15), Y: cy + rng.Range(-10, 10)})
		}
		life = int(rng.Range(0.5, 0.9) * float64(frames))
		walking = false
	case walking:
		// Cross the crosswalk left-to-right or right-to-left.
		y := H * rng.Range(0.58, 0.64)
		if rng.Bool(0.5) {
			path = []geom.Point{{X: W * 0.25, Y: y}, {X: W * 0.75, Y: y}}
		} else {
			path = []geom.Point{{X: W * 0.75, Y: y}, {X: W * 0.25, Y: y}}
		}
		speed := rng.Range(1.5, 3)
		life = int(pathLength(path) / speed)
	default:
		// Standing near the curb.
		p := geom.Point{X: W * rng.Range(0.1, 0.9), Y: H * rng.Range(0.45, 0.52)}
		path = []geom.Point{p, p}
		life = int(rng.Range(0.2, 0.5) * float64(frames))
	}
	if life < 10 {
		life = 10
	}
	person := &track{
		id: id, class: ClassPerson, spawnFrame: spawn, life: life,
		path: path, w: 26, h: 64, walking: walking, loiter: loiter,
		featureID: rng.Intn(1 << 16), pairTrack: -1,
	}
	out := []*track{person}
	if rng.Bool(s.BallFrac) {
		ball := &track{
			id: id + 1, class: ClassBall, spawnFrame: spawn, life: life,
			path: offsetPath(path, 20, 28), w: 12, h: 12, pairTrack: id,
		}
		person.hasBall = true
		person.pairTrack = ball.id
		if rng.Bool(s.HitFrac) {
			start := rng.Intn(life/2 + 1)
			person.hitStart, person.hitEnd = start, start+life/4+1
		}
		out = append(out, ball)
	}
	return out
}

// plantPickup stages the Figure 9/10 scenario: a suspect person walks to
// a parked red car and enters it; the car then drives away.
func (s *Scenario) plantPickup(rng *sim.RNG, nextID, frames int) []*track {
	W, H := float64(s.W), float64(s.H)
	spawn := frames / 4
	carX, carY := W*0.55, H*0.6
	walkLife := frames / 6
	if walkLife < 20 {
		walkLife = 20
	}
	suspect := &track{
		id: nextID, class: ClassPerson, spawnFrame: spawn, life: walkLife + 12,
		path: []geom.Point{{X: W * 0.2, Y: H * 0.62}, {X: carX - 40, Y: carY}},
		w:    26, h: 64, walking: true, suspect: true,
		featureID:  7777,
		enterStart: walkLife, enterTo: walkLife + 12,
		pairTrack: nextID + 1,
	}
	if !s.PlantPickup {
		suspect.enterStart, suspect.enterTo = 0, 0
		suspect.pairTrack = -1
		return []*track{suspect}
	}
	// Parked red car that departs after the pickup.
	carLife := walkLife + 12 + frames/6
	var carPath []geom.Point
	for i := 0; i < 8; i++ { // parked segment
		carPath = append(carPath, geom.Point{X: carX, Y: carY})
	}
	carPath = append(carPath, geom.Point{X: W * 0.95, Y: carY}) // departure
	car := &track{
		id: nextID + 1, class: ClassCar, color: ColorRed, kind: KindSedan,
		plate: "SUS-745", spawnFrame: spawn, life: carLife,
		featureID: vehicleFeatureID(nextID + 1),
		path:      carPath, w: 95, h: 60, dir: geom.DirStraight,
		pairTrack: nextID,
	}
	_ = rng
	return []*track{suspect, car}
}

// genStills creates V-COCO-style independent frames: each frame has a
// person, usually a ball, and sometimes an active hit interaction.
func (s *Scenario) genStills(rng *sim.RNG, frames int) []*track {
	var tracks []*track
	id := 1
	W, H := float64(s.W), float64(s.H)
	for f := 0; f < frames; f++ {
		px, py := W*rng.Range(0.2, 0.8), H*rng.Range(0.4, 0.7)
		person := &track{
			id: id, class: ClassPerson, spawnFrame: f, life: 1,
			path: []geom.Point{{X: px, Y: py}}, w: 28, h: 66,
			featureID: rng.Intn(1 << 16), pairTrack: -1,
		}
		id++
		tracks = append(tracks, person)
		if rng.Bool(s.BallFrac) {
			hit := rng.Bool(s.HitFrac)
			dx := rng.Range(18, 40)
			if hit {
				dx = rng.Range(8, 16) // hitting: ball close to the person
			}
			ball := &track{
				id: id, class: ClassBall, spawnFrame: f, life: 1,
				path: []geom.Point{{X: px + dx, Y: py - rng.Range(0, 30)}}, w: 12, h: 12,
				pairTrack: person.id,
			}
			id++
			person.hasBall = true
			person.pairTrack = ball.id
			if hit {
				person.hitStart, person.hitEnd = 0, 1
			}
			tracks = append(tracks, ball)
		}
	}
	return tracks
}

// materialize writes a track's per-frame objects into the video.
func (s *Scenario) materialize(v *Video, tr *track) {
	for t := 0; t < tr.life; t++ {
		fi := tr.spawnFrame + t
		if fi < 0 || fi >= len(v.Frames) {
			continue
		}
		c := tr.posAt(t)
		box := geom.BBox{
			X1: c.X - tr.w/2, Y1: c.Y - tr.h/2,
			X2: c.X + tr.w/2, Y2: c.Y + tr.h/2,
		}.Clamp(float64(v.W), float64(v.H))
		if box.Empty() {
			continue
		}
		speed := 0.0
		if t > 0 {
			speed = c.Dist(tr.posAt(t - 1))
		} else if tr.life > 1 {
			speed = c.Dist(tr.posAt(1))
		}
		obj := Object{
			TrackID: tr.id, Class: tr.class, Color: tr.color, Kind: tr.kind,
			Box: box, Plate: tr.plate, FeatureID: tr.featureID,
			Speed: speed, Dir: tr.dir,
			Walking:     tr.class == ClassPerson && tr.walking && speed > 0.5,
			HasBall:     tr.hasBall,
			HittingBall: tr.hasBall && t >= tr.hitStart && t < tr.hitEnd && tr.hitEnd > 0,
			OnCrosswalk: !box.Intersect(v.scene.Crosswalk).Empty(),
			Suspect:     tr.suspect,
			EnteringCar: tr.enterTo > 0 && t >= tr.enterStart && t < tr.enterTo,
		}
		v.Frames[fi].Objects = append(v.Frames[fi].Objects, obj)
		v.Tracks[tr.id] = append(v.Tracks[tr.id], TrackPoint{Frame: fi, Box: box})
	}
}

// intersectionPath builds a vehicle path through a central intersection:
// enter from a random edge, proceed to the center, then exit straight or
// after a turn.
func intersectionPath(rng *sim.RNG, W, H float64, turn geom.Direction) []geom.Point {
	cx, cy := W/2, H/2
	// Entry edges: 0=west 1=east 2=north 3=south.
	edge := rng.Intn(4)
	var entry, heading geom.Point
	switch edge {
	case 0:
		entry, heading = geom.Point{X: 0, Y: cy + rng.Range(-40, 40)}, geom.Point{X: 1}
	case 1:
		entry, heading = geom.Point{X: W, Y: cy + rng.Range(-40, 40)}, geom.Point{X: -1}
	case 2:
		entry, heading = geom.Point{X: cx + rng.Range(-60, 60), Y: 0}, geom.Point{Y: 1}
	default:
		entry, heading = geom.Point{X: cx + rng.Range(-60, 60), Y: H}, geom.Point{Y: -1}
	}
	center := geom.Point{X: cx, Y: entry.Y}
	if heading.X == 0 {
		center = geom.Point{X: entry.X, Y: cy}
	}
	var exitHeading geom.Point
	switch turn {
	case geom.DirLeft:
		exitHeading = geom.Point{X: heading.Y, Y: -heading.X}
	case geom.DirRight:
		exitHeading = geom.Point{X: -heading.Y, Y: heading.X}
	default:
		exitHeading = heading
	}
	reach := math.Max(W, H)
	exit := center.Add(exitHeading.Scale(reach))
	exit.X = math.Max(-50, math.Min(W+50, exit.X))
	exit.Y = math.Max(-50, math.Min(H+50, exit.Y))
	return []geom.Point{entry, center, exit}
}

func pathLength(p []geom.Point) float64 {
	total := 0.0
	for i := 1; i < len(p); i++ {
		total += p[i].Dist(p[i-1])
	}
	return total
}

func offsetPath(p []geom.Point, dx, dy float64) []geom.Point {
	out := make([]geom.Point, len(p))
	for i, pt := range p {
		out[i] = geom.Point{X: pt.X + dx, Y: pt.Y + dy}
	}
	return out
}

func weightedColor(rng *sim.RNG, w map[Color]float64) Color {
	colors := make([]Color, 0, len(w))
	weights := make([]float64, 0, len(w))
	for _, c := range AllColors { // stable iteration order
		if wt, ok := w[c]; ok {
			colors = append(colors, c)
			weights = append(weights, wt)
		}
	}
	if len(colors) == 0 {
		return ColorSilver
	}
	return colors[rng.Weighted(weights)]
}

func weightedKind(rng *sim.RNG, w map[VehicleKind]float64) VehicleKind {
	all := []VehicleKind{KindSedan, KindSUV, KindHatchback, KindVan, KindBusKind, KindTruckKind}
	kinds := make([]VehicleKind, 0, len(w))
	weights := make([]float64, 0, len(w))
	for _, k := range all {
		if wt, ok := w[k]; ok {
			kinds = append(kinds, k)
			weights = append(weights, wt)
		}
	}
	if len(kinds) == 0 {
		return KindSedan
	}
	return kinds[rng.Weighted(weights)]
}

func weightedTurn(rng *sim.RNG, w map[geom.Direction]float64) geom.Direction {
	all := []geom.Direction{geom.DirStraight, geom.DirLeft, geom.DirRight}
	dirs := make([]geom.Direction, 0, len(w))
	weights := make([]float64, 0, len(w))
	for _, d := range all {
		if wt, ok := w[d]; ok {
			dirs = append(dirs, d)
			weights = append(weights, wt)
		}
	}
	if len(dirs) == 0 {
		return geom.DirStraight
	}
	return dirs[rng.Weighted(weights)]
}

func synthPlate(rng *sim.RNG) string {
	letters := "ABCDEFGHJKLMNPRSTUVWXYZ"
	return fmt.Sprintf("%c%c%c-%03d",
		letters[rng.Intn(len(letters))],
		letters[rng.Intn(len(letters))],
		letters[rng.Intn(len(letters))],
		rng.Intn(1000))
}
