package video

// FrameSource is the decode-once abstraction the shared-scan engine
// reads from: an ordered stream of frames with capture metadata. The
// MuxStream layer pulls each frame from its source exactly once and fans
// it out to every query multiplexed onto the stream, so adding a query
// never adds a decode.
//
// *Video satisfies FrameSource directly (an already-materialized clip),
// and ScenarioSource adapts the synthetic scenario generator (the
// stand-in for a live camera in this reproduction).
type FrameSource interface {
	// SourceName identifies the stream (video name / camera id).
	SourceName() string
	// SourceFPS is the capture rate, for duration/window conversion.
	SourceFPS() int
	// NumFrames is the stream length. Live deployments would return the
	// frames decoded so far; both simulation sources know it up front.
	NumFrames() int
	// FrameAt returns frame i (0 <= i < NumFrames), in capture order.
	FrameAt(i int) *Frame
}

// SourceName implements FrameSource.
func (v *Video) SourceName() string { return v.Name }

// SourceFPS implements FrameSource.
func (v *Video) SourceFPS() int { return v.FPS }

// NumFrames implements FrameSource.
func (v *Video) NumFrames() int { return len(v.Frames) }

// FrameAt implements FrameSource.
func (v *Video) FrameAt(i int) *Frame { return &v.Frames[i] }

// ScenarioSource is a FrameSource backed by the scenario generator: the
// clip is materialized lazily on first access, standing in for a camera
// that decodes frames as they are requested.
type ScenarioSource struct {
	sc Scenario
	v  *Video
}

// NewScenarioSource wraps a scenario as a frame source.
func NewScenarioSource(sc Scenario) *ScenarioSource {
	return &ScenarioSource{sc: sc}
}

// Video returns the backing clip, generating it on first call.
func (s *ScenarioSource) Video() *Video {
	if s.v == nil {
		s.v = s.sc.Generate()
	}
	return s.v
}

// SourceName implements FrameSource.
func (s *ScenarioSource) SourceName() string { return s.Video().Name }

// SourceFPS implements FrameSource.
func (s *ScenarioSource) SourceFPS() int { return s.Video().FPS }

// NumFrames implements FrameSource.
func (s *ScenarioSource) NumFrames() int { return len(s.Video().Frames) }

// FrameAt implements FrameSource.
func (s *ScenarioSource) FrameAt(i int) *Frame { return &s.Video().Frames[i] }
