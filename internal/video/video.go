// Package video provides the synthetic video substrate that stands in for
// the paper's real surveillance footage (CityFlow-NL, public live cams,
// Auburn, V-COCO).
//
// A Scenario deterministically generates a Video: a sequence of Frames,
// each carrying ground-truth Objects (tracked entities with stable
// intrinsic attributes such as color, vehicle kind and license plate, plus
// per-frame state such as position and speed). Frames can be rasterized
// into a small pixel grid so that simulated models perform genuine
// computation over pixel data.
//
// Ground truth plays the role of the paper's hand labels: it is the
// reference against which query F1 scores are computed, and the hidden
// source from which simulated detectors derive their (noisy) outputs.
package video

import (
	"fmt"

	"vqpy/internal/geom"
)

// Class is the coarse object class vocabulary shared by scenarios,
// detectors and queries.
type Class int

// Object classes.
const (
	ClassUnknown Class = iota
	ClassPerson
	ClassCar
	ClassBus
	ClassTruck
	ClassBall
)

var classNames = [...]string{"unknown", "person", "car", "bus", "truck", "ball"}

// String implements fmt.Stringer.
func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return "invalid"
	}
	return classNames[c]
}

// ParseClass maps a class name to a Class; unknown names yield
// ClassUnknown.
func ParseClass(s string) Class {
	for i, n := range classNames {
		if n == s {
			return Class(i)
		}
	}
	return ClassUnknown
}

// Color is the color vocabulary used by vehicle attribute queries.
type Color int

// Colors. ColorNone marks objects without a meaningful color attribute.
const (
	ColorNone Color = iota
	ColorRed
	ColorGreen
	ColorBlue
	ColorBlack
	ColorWhite
	ColorSilver
	ColorYellow
)

var colorNames = [...]string{"none", "red", "green", "blue", "black", "white", "silver", "yellow"}

// String implements fmt.Stringer.
func (c Color) String() string {
	if c < 0 || int(c) >= len(colorNames) {
		return "invalid"
	}
	return colorNames[c]
}

// ParseColor maps a color name to a Color; unknown names yield ColorNone.
func ParseColor(s string) Color {
	for i, n := range colorNames {
		if n == s {
			return Color(i)
		}
	}
	return ColorNone
}

// RGB returns a representative packed 0xRRGGBB value for the color, used
// when rasterizing frames.
func (c Color) RGB() uint32 {
	switch c {
	case ColorRed:
		return 0xC03030
	case ColorGreen:
		return 0x30A040
	case ColorBlue:
		return 0x3050C0
	case ColorBlack:
		return 0x181818
	case ColorWhite:
		return 0xE8E8E8
	case ColorSilver:
		return 0xA8A8B0
	case ColorYellow:
		return 0xD0C030
	}
	return 0x808080
}

// AllColors lists the real colors (excluding ColorNone), in a stable
// order, for palette matching.
var AllColors = []Color{ColorRed, ColorGreen, ColorBlue, ColorBlack, ColorWhite, ColorSilver, ColorYellow}

// VehicleKind is the fine-grained vehicle type vocabulary of
// CityFlow-style queries.
type VehicleKind int

// Vehicle kinds. KindNone marks non-vehicles.
const (
	KindNone VehicleKind = iota
	KindSedan
	KindSUV
	KindHatchback
	KindVan
	KindBusKind
	KindTruckKind
)

var kindNames = [...]string{"none", "sedan", "suv", "hatchback", "van", "bus", "truck"}

// String implements fmt.Stringer.
func (k VehicleKind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return "invalid"
	}
	return kindNames[k]
}

// ParseKind maps a kind name to a VehicleKind; unknown names yield
// KindNone.
func ParseKind(s string) VehicleKind {
	for i, n := range kindNames {
		if n == s {
			return VehicleKind(i)
		}
	}
	return KindNone
}

// Object is the ground-truth state of one tracked entity on one frame.
//
// TrackID is stable across frames for the same physical entity; intrinsic
// attributes (Color, Kind, Plate, FeatureID) never change within a track,
// matching the paper's definition of intrinsic properties.
type Object struct {
	TrackID int
	Class   Class
	Color   Color
	Kind    VehicleKind
	Box     geom.BBox

	// Plate is the license plate string (vehicles only).
	Plate string

	// FeatureID keys the synthetic ReID embedding space (persons only).
	FeatureID int

	// Speed is the ground-truth displacement magnitude in pixels per
	// frame at this frame.
	Speed float64

	// Dir is the ground-truth overall motion class of the track.
	Dir geom.Direction

	// Walking reports whether a person is in motion this frame.
	Walking bool

	// HasBall and HittingBall describe person-ball interaction state.
	HasBall     bool
	HittingBall bool

	// OnCrosswalk reports whether the object overlaps the scene's
	// crosswalk region this frame.
	OnCrosswalk bool

	// Suspect marks the planted ReID target track.
	Suspect bool

	// EnteringCar is set on a person during frames where it is entering
	// a vehicle (the Figure 9/10 scenario).
	EnteringCar bool
}

// IsVehicle reports whether the object class is one of the vehicle
// classes.
func (o Object) IsVehicle() bool {
	return o.Class == ClassCar || o.Class == ClassBus || o.Class == ClassTruck
}

// Frame is one video frame: its index, wall time offset, and the
// ground-truth objects visible on it.
type Frame struct {
	Index   int
	TimeSec float64
	W, H    int
	Objects []Object

	scene *Scene
}

// Scene carries static per-video context referenced by frames (crosswalk
// region, day/night flag).
type Scene struct {
	Crosswalk geom.BBox
	Night     bool
}

// Scene returns the static scene context. It is never nil for frames
// produced by a Scenario.
func (f *Frame) Scene() *Scene {
	if f.scene == nil {
		return &Scene{}
	}
	return f.scene
}

// Video is an ordered sequence of frames with capture metadata.
type Video struct {
	Name   string
	FPS    int
	W, H   int
	Frames []Frame

	// Tracks indexes ground-truth objects by TrackID → per-frame
	// appearances, in frame order. Built by the generator.
	Tracks map[int][]TrackPoint

	scene *Scene
}

// TrackPoint is one appearance of a track on a frame.
type TrackPoint struct {
	Frame int
	Box   geom.BBox
}

// Duration returns the video length in seconds.
func (v *Video) Duration() float64 {
	if v.FPS == 0 {
		return 0
	}
	return float64(len(v.Frames)) / float64(v.FPS)
}

// Clip returns a shallow sub-video covering frames [from, to). Indices
// are clamped to the valid range.
func (v *Video) Clip(from, to int) *Video {
	if from < 0 {
		from = 0
	}
	if to > len(v.Frames) {
		to = len(v.Frames)
	}
	if from > to {
		from = to
	}
	out := &Video{
		Name: fmt.Sprintf("%s[%d:%d)", v.Name, from, to),
		FPS:  v.FPS, W: v.W, H: v.H,
		Frames: v.Frames[from:to],
		Tracks: v.Tracks,
		scene:  v.scene,
	}
	return out
}

// GroundTruthCount returns the number of distinct tracks matching the
// given predicate over ground-truth objects, the reference value for
// video-level counting queries.
func (v *Video) GroundTruthCount(pred func(Object) bool) int {
	seen := make(map[int]bool)
	for i := range v.Frames {
		for _, o := range v.Frames[i].Objects {
			if !seen[o.TrackID] && pred(o) {
				seen[o.TrackID] = true
			}
		}
	}
	return len(seen)
}

// FramesMatching returns the set of frame indices on which at least one
// ground-truth object satisfies pred, the reference for frame-level
// boolean queries.
func (v *Video) FramesMatching(pred func(Object) bool) map[int]bool {
	out := make(map[int]bool)
	for i := range v.Frames {
		for _, o := range v.Frames[i].Objects {
			if pred(o) {
				out[v.Frames[i].Index] = true
				break
			}
		}
	}
	return out
}
