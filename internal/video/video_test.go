package video

import (
	"testing"

	"vqpy/internal/geom"
)

func TestEnumStrings(t *testing.T) {
	if ClassCar.String() != "car" || ClassPerson.String() != "person" {
		t.Error("class names wrong")
	}
	if Class(99).String() != "invalid" {
		t.Error("invalid class name")
	}
	if ParseClass("bus") != ClassBus || ParseClass("nope") != ClassUnknown {
		t.Error("ParseClass wrong")
	}
	if ColorRed.String() != "red" || ParseColor("green") != ColorGreen {
		t.Error("color names wrong")
	}
	if ParseColor("nope") != ColorNone || Color(99).String() != "invalid" {
		t.Error("color edge cases wrong")
	}
	if KindSUV.String() != "suv" || ParseKind("sedan") != KindSedan {
		t.Error("kind names wrong")
	}
	if ParseKind("nope") != KindNone || VehicleKind(99).String() != "invalid" {
		t.Error("kind edge cases wrong")
	}
}

func TestColorRGBDistinct(t *testing.T) {
	seen := make(map[uint32]Color)
	for _, c := range AllColors {
		rgb := c.RGB()
		if prev, dup := seen[rgb]; dup {
			t.Errorf("colors %v and %v share RGB %06x", prev, c, rgb)
		}
		seen[rgb] = c
	}
}

func TestIsVehicle(t *testing.T) {
	if !(Object{Class: ClassCar}).IsVehicle() || !(Object{Class: ClassBus}).IsVehicle() {
		t.Error("car/bus should be vehicles")
	}
	if (Object{Class: ClassPerson}).IsVehicle() || (Object{Class: ClassBall}).IsVehicle() {
		t.Error("person/ball should not be vehicles")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := CityFlow(7, 20).Generate()
	b := CityFlow(7, 20).Generate()
	if len(a.Frames) != len(b.Frames) {
		t.Fatalf("frame counts differ: %d vs %d", len(a.Frames), len(b.Frames))
	}
	for i := range a.Frames {
		if len(a.Frames[i].Objects) != len(b.Frames[i].Objects) {
			t.Fatalf("frame %d object counts differ", i)
		}
		for j := range a.Frames[i].Objects {
			if a.Frames[i].Objects[j] != b.Frames[i].Objects[j] {
				t.Fatalf("frame %d object %d differs", i, j)
			}
		}
	}
	c := CityFlow(8, 20).Generate()
	diff := false
	for i := range a.Frames {
		if len(a.Frames[i].Objects) != len(c.Frames[i].Objects) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical structure (suspicious)")
	}
}

func TestGenerateBasicShape(t *testing.T) {
	v := CityFlow(1, 60).Generate()
	if v.FPS != 10 || v.W != 1280 || v.H != 960 {
		t.Errorf("metadata wrong: fps=%d %dx%d", v.FPS, v.W, v.H)
	}
	if len(v.Frames) != 600 {
		t.Errorf("frames = %d, want 600", len(v.Frames))
	}
	if v.Duration() != 60 {
		t.Errorf("Duration = %v", v.Duration())
	}
	total := 0
	for i := range v.Frames {
		if v.Frames[i].Index != i {
			t.Fatalf("frame %d has Index %d", i, v.Frames[i].Index)
		}
		total += len(v.Frames[i].Objects)
	}
	if total == 0 {
		t.Fatal("no objects generated")
	}
	if len(v.Tracks) == 0 {
		t.Fatal("no tracks indexed")
	}
}

func TestIntrinsicAttributesStable(t *testing.T) {
	v := CityFlow(2, 60).Generate()
	type intrinsics struct {
		color Color
		kind  VehicleKind
		plate string
		class Class
	}
	seen := make(map[int]intrinsics)
	for i := range v.Frames {
		for _, o := range v.Frames[i].Objects {
			in := intrinsics{o.Color, o.Kind, o.Plate, o.Class}
			if prev, ok := seen[o.TrackID]; ok && prev != in {
				t.Fatalf("track %d intrinsics changed: %v -> %v", o.TrackID, prev, in)
			}
			seen[o.TrackID] = in
		}
	}
}

func TestBoxesInsideFrame(t *testing.T) {
	v := Jackson(3, 30).Generate()
	for i := range v.Frames {
		for _, o := range v.Frames[i].Objects {
			if o.Box.X1 < 0 || o.Box.Y1 < 0 || o.Box.X2 > float64(v.W) || o.Box.Y2 > float64(v.H) {
				t.Fatalf("frame %d track %d box out of frame: %v", i, o.TrackID, o.Box)
			}
			if o.Box.Empty() {
				t.Fatalf("frame %d track %d empty box", i, o.TrackID)
			}
		}
	}
}

func TestTrackContinuity(t *testing.T) {
	// Consecutive appearances of a track should move less than a
	// plausible per-frame bound, so trackers can follow them.
	v := Southampton(4, 20).Generate()
	for id, pts := range v.Tracks {
		for i := 1; i < len(pts); i++ {
			if pts[i].Frame != pts[i-1].Frame+1 {
				continue // clipped at frame edge
			}
			d := geom.CenterDist(pts[i].Box, pts[i-1].Box)
			if d > 60 {
				t.Fatalf("track %d jumped %.1f px between frames %d-%d", id, d, pts[i-1].Frame, pts[i].Frame)
			}
		}
	}
}

func TestColorRarityRespected(t *testing.T) {
	v := CityFlow(5, 600).Generate()
	counts := make(map[Color]int)
	for id := range v.Tracks {
		// Find the first object of this track to read intrinsics.
		var obj *Object
		for i := range v.Frames {
			for j := range v.Frames[i].Objects {
				if v.Frames[i].Objects[j].TrackID == id {
					obj = &v.Frames[i].Objects[j]
					break
				}
			}
			if obj != nil {
				break
			}
		}
		if obj != nil && obj.IsVehicle() {
			counts[obj.Color]++
		}
	}
	if counts[ColorGreen] >= counts[ColorBlack] {
		t.Errorf("green (%d) should be rarer than black (%d)", counts[ColorGreen], counts[ColorBlack])
	}
}

func TestSpeedersExist(t *testing.T) {
	sc := Southampton(6, 120)
	sc.SpeederFrac = 0.3
	v := sc.Generate()
	speeders := v.GroundTruthCount(func(o Object) bool {
		return o.IsVehicle() && o.Speed > SpeedingThreshold
	})
	if speeders == 0 {
		t.Error("no speeding vehicles generated at SpeederFrac=0.3")
	}
}

func TestStillsIndependence(t *testing.T) {
	v := VCOCO(7, 200).Generate()
	if len(v.Frames) != 200 {
		t.Fatalf("frames = %d", len(v.Frames))
	}
	// Track IDs must not repeat across still frames.
	seen := make(map[int]int)
	hits, balls := 0, 0
	for i := range v.Frames {
		for _, o := range v.Frames[i].Objects {
			if f, ok := seen[o.TrackID]; ok && f != i {
				t.Fatalf("track %d appears on frames %d and %d in stills mode", o.TrackID, f, i)
			}
			seen[o.TrackID] = i
			if o.Class == ClassBall {
				balls++
			}
			if o.HittingBall {
				hits++
			}
		}
	}
	if balls == 0 {
		t.Error("no balls in V-COCO stills")
	}
	if hits == 0 {
		t.Error("no hit interactions in V-COCO stills")
	}
	// Positive rate should be low, near the paper's 4.9%.
	posFrames := v.FramesMatching(func(o Object) bool { return o.HittingBall })
	rate := float64(len(posFrames)) / float64(len(v.Frames))
	if rate > 0.20 {
		t.Errorf("hit positive rate %.2f too high", rate)
	}
}

func TestPickupScenario(t *testing.T) {
	v := Pickup(8, 60).Generate()
	suspectFrames := v.FramesMatching(func(o Object) bool { return o.Suspect })
	if len(suspectFrames) == 0 {
		t.Fatal("no suspect planted")
	}
	entering := v.FramesMatching(func(o Object) bool { return o.EnteringCar })
	if len(entering) == 0 {
		t.Fatal("no entering-car event")
	}
	redCars := v.GroundTruthCount(func(o Object) bool { return o.Class == ClassCar && o.Color == ColorRed })
	if redCars == 0 {
		t.Fatal("no red car planted")
	}
}

func TestClip(t *testing.T) {
	v := Banff(9, 30).Generate()
	c := v.Clip(10, 20)
	if len(c.Frames) != 10 {
		t.Errorf("clip frames = %d", len(c.Frames))
	}
	if c.Frames[0].Index != 10 {
		t.Errorf("clip preserves original indices; got %d", c.Frames[0].Index)
	}
	// Degenerate ranges clamp.
	if got := len(v.Clip(-5, 1e6).Frames); got != len(v.Frames) {
		t.Errorf("clamped clip frames = %d", got)
	}
	if got := len(v.Clip(50, 10).Frames); got != 0 {
		t.Errorf("inverted clip frames = %d", got)
	}
}

func TestLoiterersDwell(t *testing.T) {
	sc := Retail(10, 120)
	v := sc.Generate()
	longDwell := 0
	for _, pts := range v.Tracks {
		if len(pts) > 40*v.FPS { // > 40 seconds
			longDwell++
		}
	}
	if longDwell == 0 {
		t.Error("retail scenario produced no long-dwelling tracks")
	}
}

func TestCrosswalkFlag(t *testing.T) {
	v := Auburn(11, 120).Generate()
	onCw := 0
	for i := range v.Frames {
		for _, o := range v.Frames[i].Objects {
			if o.Class == ClassPerson && o.OnCrosswalk {
				onCw++
			}
		}
	}
	if onCw == 0 {
		t.Error("no persons on crosswalk in Auburn scenario")
	}
}

func TestDirectionGroundTruthMatchesGeometry(t *testing.T) {
	// For long vehicle tracks, ClassifyDirection over the ground-truth
	// centroids should frequently agree with the generated label.
	v := CityFlow(12, 300).Generate()
	agree, total := 0, 0
	for id, pts := range v.Tracks {
		if len(pts) < 15 {
			continue
		}
		var label geom.Direction
		var found bool
		for i := range v.Frames {
			for _, o := range v.Frames[i].Objects {
				if o.TrackID == id && o.IsVehicle() {
					label, found = o.Dir, true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			continue
		}
		centers := make([]geom.Point, len(pts))
		for i, p := range pts {
			centers[i] = p.Box.Center()
		}
		got := geom.ClassifyDirection(centers)
		total++
		if got == label {
			agree++
		}
	}
	if total == 0 {
		t.Skip("no long vehicle tracks")
	}
	if frac := float64(agree) / float64(total); frac < 0.6 {
		t.Errorf("direction agreement %.2f (%d/%d) too low", frac, agree, total)
	}
}
