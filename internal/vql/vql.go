// Package vql is the natural-language query frontend (DESIGN.md §13): a
// lexer and recursive-descent parser for a constrained English query
// language ("red car stopped near crosswalk for 5 seconds", "person
// walking at night") that compiles into the same logical query
// representation every other frontend produces — a core.Query carrying
// the closed-vocabulary constraints (class, color, kind, speed) the
// detector/filter cascade can answer cheaply, plus the open-vocabulary
// concept conjunction only the simulated VLM verifier can decide. The
// planner (plan.CompileTextIR) appends that verifier as a lazy final
// stage: it is consulted only on frames the cheap cascade matched.
//
// The lexer and error conventions mirror internal/sqlbase: tokens carry
// byte positions into the input, and every parse error reports one
// ("vql: ... at %d"), so tooling can point at the offending word.
package vql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"vqpy/internal/core"
	"vqpy/internal/models"
	"vqpy/internal/video"
)

// DefaultScoreFloor is the detector-confidence floor every compiled
// text query applies to its instance — text queries have no syntax for
// tuning it, so one documented constant keeps parsed and hand-built
// plans comparable.
const DefaultScoreFloor = 0.5

// tokenKind discriminates lexer tokens.
type tokenKind int

const (
	tokWord tokenKind = iota
	tokNumber
	tokEOF
)

// token is one lexeme with its byte position in the input.
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex splits the input into lowercased word and number tokens. Anything
// but letters, digits and whitespace is an error carrying its position.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c >= '0' && c <= '9':
			start := i
			for i < n && (input[i] >= '0' && input[i] <= '9' || input[i] == '.') {
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			start := i
			for i < n && (input[i] >= 'a' && input[i] <= 'z' || input[i] >= 'A' && input[i] <= 'Z') {
				i++
			}
			toks = append(toks, token{kind: tokWord, text: strings.ToLower(input[start:i]), pos: start})
		default:
			return nil, fmt.Errorf("vql: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

// noiseWords are skipped everywhere: they carry no meaning in the
// constrained grammar.
var noiseWords = map[string]bool{
	"a": true, "an": true, "the": true, "is": true, "are": true,
	"that": true, "which": true, "and": true, "seen": true,
}

// classAliases maps surface class words to the canonical catalog word.
var classAliases = map[string]string{
	"people": "person",
	"cars":   "car",
	"trucks": "truck",
	"buses":  "bus",
	"balls":  "ball",
}

// vehicleKinds are the fine-grained kind words accepted before the
// class word ("suv car"). "bus" and "truck" are class words, not kinds.
var vehicleKinds = map[string]video.VehicleKind{
	"sedan":     video.KindSedan,
	"suv":       video.KindSUV,
	"hatchback": video.KindHatchback,
	"van":       video.KindVan,
}

// singleConcepts maps one-word open-vocabulary clauses to the
// normalized concept key the VLM's concept table uses.
var singleConcepts = map[string]string{
	"stopped":    "stopped",
	"parked":     "stopped",
	"moving":     "moving",
	"walking":    "walking",
	"suspicious": "suspicious",
	"suspect":    "suspicious",
}

// phraseConcepts maps two-word open-vocabulary clauses, keyed by first
// word then second word, to the normalized concept key.
var phraseConcepts = map[string]map[string]string{
	"near":     {"crosswalk": "on crosswalk"},
	"on":       {"crosswalk": "on crosswalk"},
	"at":       {"crosswalk": "on crosswalk", "night": "at night"},
	"with":     {"ball": "with ball"},
	"carrying": {"ball": "with ball"},
	"holding":  {"ball": "with ball"},
	"hitting":  {"ball": "hitting ball"},
	"entering": {"car": "entering car"},
}

// Parsed is the AST of one text query.
type Parsed struct {
	// ClassWord is the canonical catalog word naming the object class.
	ClassWord string
	// Color / Kind are the closed-vocabulary appearance constraints
	// (zero values when absent).
	Color video.Color
	Kind  video.VehicleKind
	// FasterThan / SlowerThan carry a speed clause's threshold in the
	// velocity property's units; nil when absent.
	FasterThan *float64
	SlowerThan *float64
	// Concepts lists the normalized open-vocabulary concept keys, in
	// appearance order, deduplicated.
	Concepts []string
	// MinSeconds is the duration clause ("for N seconds"); 0 when
	// absent.
	MinSeconds float64
}

// Canonical renders the parse in normalized clause order; two texts
// with the same meaning render identically, and the compiled query's
// name embeds it.
func (p *Parsed) Canonical() string {
	var parts []string
	if p.Color != video.ColorNone {
		parts = append(parts, p.Color.String())
	}
	if p.Kind != video.KindNone {
		parts = append(parts, p.Kind.String())
	}
	parts = append(parts, p.ClassWord)
	parts = append(parts, p.Concepts...)
	if p.FasterThan != nil {
		parts = append(parts, fmt.Sprintf("faster than %g", *p.FasterThan))
	}
	if p.SlowerThan != nil {
		parts = append(parts, fmt.Sprintf("slower than %g", *p.SlowerThan))
	}
	if p.MinSeconds > 0 {
		parts = append(parts, fmt.Sprintf("for %g seconds", p.MinSeconds))
	}
	return strings.Join(parts, " ")
}

// parser walks the token stream.
type parser struct {
	toks []token
	i    int
}

// cur returns the current token with noise words skipped.
func (p *parser) cur() token {
	for p.toks[p.i].kind == tokWord && noiseWords[p.toks[p.i].text] {
		p.i++
	}
	return p.toks[p.i]
}

func (p *parser) advance() { p.i++ }

// Parse lexes and parses one text query. Errors carry the byte
// position of the offending token.
func Parse(input string) (*Parsed, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	out := &Parsed{}

	// Tail clauses dedup concepts while preserving appearance order.
	seen := map[string]bool{}
	addConcept := func(key string, pos int) error {
		if !models.KnownConcept(key) {
			return fmt.Errorf("vql: concept %q is outside the verifier's vocabulary at %d", key, pos)
		}
		if !seen[key] {
			seen[key] = true
			out.Concepts = append(out.Concepts, key)
		}
		return nil
	}

	// Head: [color] [kind] class, with one-word concepts allowed as
	// pre-class adjectives ("suspicious person").
	for out.ClassWord == "" {
		t := p.cur()
		if t.kind != tokWord {
			return nil, fmt.Errorf("vql: expected an object class at %d", t.pos)
		}
		word := t.text
		if alias, ok := classAliases[word]; ok {
			word = alias
		}
		switch {
		case video.ParseClass(word) != video.ClassUnknown:
			out.ClassWord = word
		case video.ParseColor(word) != video.ColorNone:
			if out.Color != video.ColorNone {
				return nil, fmt.Errorf("vql: duplicate color %q at %d", t.text, t.pos)
			}
			out.Color = video.ParseColor(word)
		default:
			if k, ok := vehicleKinds[word]; ok {
				if out.Kind != video.KindNone {
					return nil, fmt.Errorf("vql: duplicate kind %q at %d", t.text, t.pos)
				}
				out.Kind = k
			} else if key, ok := singleConcepts[word]; ok {
				if err := addConcept(key, t.pos); err != nil {
					return nil, err
				}
			} else {
				return nil, fmt.Errorf("vql: unknown word %q at %d (expected a color, kind or object class)", t.text, t.pos)
			}
		}
		p.advance()
	}

	// Tail: concept, speed and duration clauses until EOF.
	for {
		t := p.cur()
		if t.kind == tokEOF {
			break
		}
		if t.kind != tokWord {
			return nil, fmt.Errorf("vql: unexpected number %q at %d", t.text, t.pos)
		}
		word := t.text
		switch {
		case word == "faster" || word == "slower":
			p.advance()
			if than := p.cur(); than.kind != tokWord || than.text != "than" {
				return nil, fmt.Errorf("vql: expected \"than\" after %q at %d", word, than.pos)
			}
			p.advance()
			num := p.cur()
			if num.kind != tokNumber {
				return nil, fmt.Errorf("vql: expected a speed after \"%s than\" at %d", word, num.pos)
			}
			v, err := strconv.ParseFloat(num.text, 64)
			if err != nil {
				return nil, fmt.Errorf("vql: bad number %q at %d", num.text, num.pos)
			}
			if word == "faster" {
				if out.FasterThan != nil {
					return nil, fmt.Errorf("vql: duplicate speed clause at %d", t.pos)
				}
				out.FasterThan = &v
			} else {
				if out.SlowerThan != nil {
					return nil, fmt.Errorf("vql: duplicate speed clause at %d", t.pos)
				}
				out.SlowerThan = &v
			}
			p.advance()
		case word == "for":
			p.advance()
			num := p.cur()
			if num.kind != tokNumber {
				return nil, fmt.Errorf("vql: expected a duration after \"for\" at %d", num.pos)
			}
			v, err := strconv.ParseFloat(num.text, 64)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("vql: bad duration %q at %d", num.text, num.pos)
			}
			p.advance()
			if unit := p.cur(); unit.kind != tokWord || (unit.text != "seconds" && unit.text != "second") {
				return nil, fmt.Errorf("vql: expected \"seconds\" at %d", unit.pos)
			}
			if out.MinSeconds > 0 {
				return nil, fmt.Errorf("vql: duplicate duration clause at %d", t.pos)
			}
			out.MinSeconds = v
			p.advance()
		default:
			if second, ok := phraseConcepts[word]; ok {
				p.advance()
				nxt := p.cur()
				if nxt.kind != tokWord {
					return nil, fmt.Errorf("vql: expected a word after %q at %d", word, nxt.pos)
				}
				key, ok := second[nxt.text]
				if !ok {
					return nil, fmt.Errorf("vql: unknown phrase %q at %d", word+" "+nxt.text, t.pos)
				}
				if err := addConcept(key, t.pos); err != nil {
					return nil, err
				}
				p.advance()
			} else if key, ok := singleConcepts[word]; ok {
				if err := addConcept(key, t.pos); err != nil {
					return nil, err
				}
				p.advance()
			} else {
				return nil, fmt.Errorf("vql: unknown word %q at %d", t.text, t.pos)
			}
		}
	}
	return out, nil
}

// CatalogEntry binds one class word to the library VObj type that
// detects it.
type CatalogEntry struct {
	// Word is the canonical class word ("car", "person", ...).
	Word string
	// Class is the detected object class the verifier filters on.
	Class video.Class
	// Instance is the instance name the compiled query binds — the same
	// name the library's hand-built queries use, so compiled plans
	// render identically to hand-built ones.
	Instance string
	// New returns a fresh VObj type per compile (queries must not share
	// type state).
	New func() *core.VObjType
}

// Catalog maps class words to VObj factories. The frontend cannot
// import the root facade (the facade imports it), so the facade injects
// its library types through a Catalog at compile time.
type Catalog struct {
	entries map[string]CatalogEntry
}

// NewCatalog builds a catalog from entries; duplicate words panic (a
// programming error, caught at init).
func NewCatalog(entries ...CatalogEntry) Catalog {
	m := make(map[string]CatalogEntry, len(entries))
	for _, e := range entries {
		if _, dup := m[e.Word]; dup {
			panic(fmt.Sprintf("vql: duplicate catalog word %q", e.Word))
		}
		m[e.Word] = e
	}
	return Catalog{entries: m}
}

// Words lists the catalog's class words, sorted.
func (c Catalog) Words() []string {
	out := make([]string, 0, len(c.entries))
	for w := range c.entries {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// Compiled is one compiled text query: the closed-vocabulary part as a
// regular logical query plus the open-vocabulary remainder for the
// verification stage.
type Compiled struct {
	// Query is the cheap-cascade part (class, score floor, color, kind,
	// speed), named "Text(<canonical>)".
	Query *core.Query
	// Class is the verified object class; Concepts the normalized
	// open-vocabulary conjunction (empty means no verify stage).
	Class    video.Class
	Concepts []string
	// MinSeconds is the duration clause, applied after verification.
	MinSeconds float64
	// Canonical is the normalized rendering of the parse.
	Canonical string
}

// Compile parses a text query and lowers it onto catalog types. The
// compiled query validates against the catalog type's declared
// properties, so a speed clause on a type without a velocity property
// fails here, not at execution.
func Compile(text string, cat Catalog) (*Compiled, error) {
	p, err := Parse(text)
	if err != nil {
		return nil, err
	}
	entry, ok := cat.entries[p.ClassWord]
	if !ok {
		return nil, fmt.Errorf("vql: no catalog type for class %q (have %v)", p.ClassWord, cat.Words())
	}
	inst := entry.Instance
	preds := []core.Pred{core.P(inst, core.PropScore).Gt(DefaultScoreFloor)}
	if p.Color != video.ColorNone {
		preds = append(preds, core.P(inst, "color").Eq(p.Color.String()))
	}
	if p.Kind != video.KindNone {
		preds = append(preds, core.P(inst, "kind").Eq(p.Kind.String()))
	}
	if p.FasterThan != nil {
		preds = append(preds, core.P(inst, "velocity").Gt(*p.FasterThan))
	}
	if p.SlowerThan != nil {
		preds = append(preds, core.P(inst, "velocity").Lt(*p.SlowerThan))
	}
	canonical := p.Canonical()
	q := core.NewQuery("Text("+canonical+")").
		Use(inst, entry.New()).
		Where(core.And(preds...))
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("vql: %q does not fit type %s: %w", text, entry.Word, err)
	}
	return &Compiled{
		Query: q, Class: entry.Class, Concepts: p.Concepts,
		MinSeconds: p.MinSeconds, Canonical: canonical,
	}, nil
}
