package vql

import (
	"strings"
	"testing"

	"vqpy/internal/core"
	"vqpy/internal/video"
)

// testCatalog builds a minimal catalog mirroring the facade's library
// shapes: cars carry color/kind/velocity, people and balls only detect.
func testCatalog() Catalog {
	car := func() *core.VObjType {
		return core.NewVObj("Car", video.ClassCar).
			Detector("yolox").
			StatelessModel("color", "color_detect", true).
			StatelessModel("kind", "type_detect", true).
			StatefulFunc("velocity", core.PropBBox, 1, func(core.PropInput) (any, error) { return 0.0, nil })
	}
	person := func() *core.VObjType {
		return core.NewVObj("Person", video.ClassPerson).Detector("person_detector")
	}
	return NewCatalog(
		CatalogEntry{Word: "car", Class: video.ClassCar, Instance: "car", New: car},
		CatalogEntry{Word: "person", Class: video.ClassPerson, Instance: "p", New: person},
	)
}

// TestParseTable drives the grammar through representative queries and
// checks the normalized parse.
func TestParseTable(t *testing.T) {
	faster := 12.0
	cases := []struct {
		text string
		want Parsed
	}{
		{"red car", Parsed{ClassWord: "car", Color: video.ColorRed}},
		{"a red car that is stopped", Parsed{ClassWord: "car", Color: video.ColorRed, Concepts: []string{"stopped"}}},
		{"truck stopped near crosswalk", Parsed{ClassWord: "truck", Concepts: []string{"stopped", "on crosswalk"}}},
		{"people walking at night", Parsed{ClassWord: "person", Concepts: []string{"walking", "at night"}}},
		{"suv car moving", Parsed{ClassWord: "car", Kind: video.KindSUV, Concepts: []string{"moving"}}},
		{"car faster than 12", Parsed{ClassWord: "car", FasterThan: &faster}},
		{"white car parked for 5 seconds", Parsed{ClassWord: "car", Color: video.ColorWhite, Concepts: []string{"stopped"}, MinSeconds: 5}},
		{"person carrying ball", Parsed{ClassWord: "person", Concepts: []string{"with ball"}}},
		{"person entering car", Parsed{ClassWord: "person", Concepts: []string{"entering car"}}},
		{"the suspicious person", Parsed{ClassWord: "person", Concepts: []string{"suspicious"}}},
	}
	for _, tc := range cases {
		got, err := Parse(tc.text)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.text, err)
			continue
		}
		if got.ClassWord != tc.want.ClassWord || got.Color != tc.want.Color || got.Kind != tc.want.Kind {
			t.Errorf("Parse(%q) head = %+v, want %+v", tc.text, got, tc.want)
		}
		if len(got.Concepts) != len(tc.want.Concepts) {
			t.Errorf("Parse(%q) concepts = %v, want %v", tc.text, got.Concepts, tc.want.Concepts)
		} else {
			for i := range got.Concepts {
				if got.Concepts[i] != tc.want.Concepts[i] {
					t.Errorf("Parse(%q) concepts = %v, want %v", tc.text, got.Concepts, tc.want.Concepts)
					break
				}
			}
		}
		if got.MinSeconds != tc.want.MinSeconds {
			t.Errorf("Parse(%q) MinSeconds = %v, want %v", tc.text, got.MinSeconds, tc.want.MinSeconds)
		}
		if (got.FasterThan == nil) != (tc.want.FasterThan == nil) {
			t.Errorf("Parse(%q) FasterThan = %v, want %v", tc.text, got.FasterThan, tc.want.FasterThan)
		}
	}
}

// TestParseErrorsCarryPositions pins the error contract: every parse
// failure names a byte offset with the sqlbase-style "at %d" suffix.
func TestParseErrorsCarryPositions(t *testing.T) {
	cases := []struct {
		text    string
		wantPos string
	}{
		{"", "at 0"},
		{"zebra crossing", "at 0"},
		{"car dancing", "at 4"},
		{"car faster 12", "at 11"},
		{"car faster than fast", "at 16"},
		{"car for seconds", "at 8"},
		{"car for 5 minutes", "at 10"},
		{"red red car", "at 4"},
		{"car near ball", "at 4"},
		{"car $", "at 4"},
		{"car stopped 12", "at 12"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.text)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error", tc.text)
			continue
		}
		if !strings.HasPrefix(err.Error(), "vql: ") {
			t.Errorf("Parse(%q) error %q does not carry the vql: prefix", tc.text, err)
		}
		if !strings.Contains(err.Error(), tc.wantPos) {
			t.Errorf("Parse(%q) error %q does not carry position %q", tc.text, err, tc.wantPos)
		}
	}
}

// TestCompileLowersOntoCatalog checks the closed-vocabulary lowering:
// the compiled query binds the catalog instance, carries the canonical
// name and rejects clauses the type cannot answer.
func TestCompileLowersOntoCatalog(t *testing.T) {
	cat := testCatalog()
	c, err := Compile("a red suv car stopped for 2 seconds", cat)
	if err != nil {
		t.Fatal(err)
	}
	if want := "Text(red suv car stopped for 2 seconds)"; c.Query.Name() != want {
		t.Errorf("query name = %q, want %q", c.Query.Name(), want)
	}
	if c.Class != video.ClassCar || c.MinSeconds != 2 {
		t.Errorf("compiled = %+v", c)
	}
	if len(c.Concepts) != 1 || c.Concepts[0] != "stopped" {
		t.Errorf("concepts = %v, want [stopped]", c.Concepts)
	}

	// A speed clause on a type without a velocity property fails at
	// compile time, not execution.
	if _, err := Compile("person faster than 3", cat); err == nil {
		t.Error("Compile accepted a speed clause on a velocity-less type")
	}
	// An unknown class word names the catalog vocabulary.
	if _, err := Compile("ball moving", cat); err == nil || !strings.Contains(err.Error(), "catalog") {
		t.Errorf("Compile(ball) error = %v, want a catalog error", err)
	}
}

// TestCanonicalNormalizes checks that surface variation collapses: two
// phrasings of the same query share one canonical form.
func TestCanonicalNormalizes(t *testing.T) {
	a, err := Parse("a red car that is parked near the crosswalk")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("red car stopped on crosswalk")
	if err != nil {
		t.Fatal(err)
	}
	if a.Canonical() != b.Canonical() {
		t.Errorf("canonical forms differ: %q vs %q", a.Canonical(), b.Canonical())
	}
}

// FuzzParse asserts the parser never panics and every accepted parse
// re-parses from its canonical rendering to the same canonical form.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"red car stopped", "truck near crosswalk", "people walking at night",
		"car faster than 12 for 3 seconds", "", "car $", "faster than",
		"the the the", "car stopped stopped", "person with ball",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		p, err := Parse(text)
		if err != nil {
			return
		}
		canon := p.Canonical()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical %q of %q does not re-parse: %v", canon, text, err)
		}
		if p2.Canonical() != canon {
			t.Fatalf("canonical not a fixed point: %q -> %q", canon, p2.Canonical())
		}
	})
}
