package vqpy

import (
	"fmt"

	"vqpy/internal/core"
	"vqpy/internal/geom"
	"vqpy/internal/models"
	"vqpy/internal/video"
)

// This file is the §2 "Library": ready-made VObjs, Relations and Queries
// that serve as building blocks, mirroring vqpy's built-ins.

// VelocityProp returns the stateful velocity property of Figure 23:
// centroid displacement (pixels/frame) averaged over the last
// historyLen+1 bounding boxes.
func VelocityProp(historyLen int) *Property {
	return &core.Property{
		Name: "velocity", Stateful: true, DependsOn: []string{core.PropBBox},
		HistoryLen: historyLen, CostHintMS: 0.05,
		Compute: func(in PropInput) (any, error) {
			pts := make([]geom.Point, 0, len(in.History))
			for _, h := range in.History {
				if b, ok := h.(geom.BBox); ok {
					pts = append(pts, b.Center())
				}
			}
			if len(pts) < 2 {
				return nil, core.ErrNotReady
			}
			return geom.Velocity(pts), nil
		},
	}
}

// DirectionProp returns the stateful direction property of Figure 2:
// coarse motion class over the last historyLen+1 centers.
func DirectionProp(historyLen int) *Property {
	return &core.Property{
		Name: "direction", Stateful: true, DependsOn: []string{core.PropCenter},
		HistoryLen: historyLen, CostHintMS: 0.05,
		Compute: func(in PropInput) (any, error) {
			pts := make([]geom.Point, 0, len(in.History))
			for _, h := range in.History {
				if p, ok := h.(geom.Point); ok {
					pts = append(pts, p)
				}
			}
			if len(pts) < 3 {
				return nil, core.ErrNotReady
			}
			return geom.ClassifyDirection(pts).String(), nil
		},
	}
}

// Car is the library vehicle VObj (Figure 2): yolox detection, intrinsic
// color / type / plate via zoo models, and stateful direction and
// velocity.
func Car() *VObjType {
	return core.NewVObj("Car", video.ClassCar).
		Detector("yolox").
		StatelessModel("color", "color_detect", true).
		StatelessModel("kind", "type_detect", true).
		StatelessModel("plate", "plate_ocr", true).
		AddProperty(DirectionProp(5)).
		AddProperty(VelocityProp(1))
}

// Bus is the library bus VObj.
func Bus() *VObjType {
	return core.NewVObj("Bus", video.ClassBus).
		Detector("yolox").
		StatelessModel("color", "color_detect", true).
		AddProperty(DirectionProp(5)).
		AddProperty(VelocityProp(1))
}

// Truck is the library truck VObj.
func Truck() *VObjType {
	return core.NewVObj("Truck", video.ClassTruck).
		Detector("yolox").
		StatelessModel("color", "color_detect", true).
		AddProperty(DirectionProp(5)).
		AddProperty(VelocityProp(1))
}

// RedCar extends Car with the registered specialized NN and binary
// classifier of Figure 11.
func RedCar() *VObjType {
	return Car().Extend("RedCar").
		RegisterSpecializedNN("red_car_specialized").
		RegisterFilter("no_red_on_road")
}

// Person is the library person VObj, with a ReID feature property.
func Person() *VObjType {
	return core.NewVObj("Person", video.ClassPerson).
		Detector("person_detector").
		StatelessModel("feature", "reid", false)
}

// SuspectPerson extends Person with the stateless feature / stateful
// similarity pair of the Figure 10 example: similarity compares recent
// feature vectors against a target embedding.
func SuspectPerson(target []float64, window int) *VObjType {
	return Person().Extend("SuspectPerson").
		AddProperty(&core.Property{
			Name: "similarity", Stateful: true, DependsOn: []string{"feature"},
			HistoryLen: window, CostHintMS: 0.2,
			Compute: func(in PropInput) (any, error) {
				if len(in.History) == 0 {
					return nil, core.ErrNotReady
				}
				best := 0.0
				for _, h := range in.History {
					v, ok := h.([]float64)
					if !ok {
						continue
					}
					if s := models.Cosine(v, target); s > best {
						best = s
					}
				}
				return best, nil
			},
		})
}

// Ball is the library ball VObj.
func Ball() *VObjType {
	return core.NewVObj("Ball", video.ClassBall).Detector("yolox")
}

// NightScene is the special scene VObj (§3) with a "night" background
// property computed honestly from frame pixels (mean brightness below a
// threshold). Scene properties are per-frame and therefore never
// intrinsic. Constraints on the scene act as frame filters: the planner
// schedules the scene path before any detector.
func NightScene() *VObjType {
	return core.Scene().AddProperty(&core.Property{
		Name: "night", CostHintMS: 0.3,
		Compute: func(in PropInput) (any, error) {
			r := in.Raster
			if r == nil {
				r = in.Frame.Render()
			}
			stats := r.Crop(in.Box, in.Frame.W, in.Frame.H)
			brightness := (stats.MeanR + stats.MeanG + stats.MeanB) / 3
			return brightness < 48, nil
		},
	})
}

// PersonBallInteraction is the Figure 4 relation: the "interaction"
// property is computed by the UPT human-object-interaction model.
func PersonBallInteraction(person, ball *VObjType) *RelationType {
	return core.NewRelation("person_ball", core.RelSpatial, person, ball).
		ModelProp("interaction", "upt")
}

// SpeedQuery is the library query used in Figure 8: objects of the given
// type moving faster than threshold (pixels/frame).
func SpeedQuery(name, instance string, t *VObjType, threshold float64) *Query {
	if _, ok := t.Prop("velocity"); !ok {
		t = t.Extend(t.Name() + "WithVelocity").AddProperty(VelocityProp(1))
	}
	return core.NewQuery(name).
		Use(instance, t).
		Where(And(
			P(instance, core.PropScore).Gt(0.6),
			P(instance, "velocity").Gt(threshold),
		)).
		FrameOutput(Sel(instance, core.PropTrackID), Sel(instance, core.PropBBox))
}

// CollisionQuery is the library sub-query of SpatialQuery used in Figure
// 8: two objects closer than threshold pixels.
func CollisionQuery(name string, left, right *VObjType, threshold float64) (*SpatialQuery, error) {
	li, ri := instanceNameFor(left, "a"), instanceNameFor(right, "b")
	if li == ri {
		ri += "2"
	}
	rel := core.DistanceRelation(name+"_near", left, right)
	lq := core.NewQuery(name+"_left").Use(li, left).
		Where(P(li, core.PropScore).Gt(0.5))
	rq := core.NewQuery(name+"_right").Use(ri, right).
		Where(P(ri, core.PropScore).Gt(0.5))
	return core.NewSpatialQuery(name, lq, rq, rel,
		RP(name+"_near", "distance").Lt(threshold))
}

func instanceNameFor(t *VObjType, fallback string) string {
	if t == nil {
		return fallback
	}
	name := t.Name()
	if name == "" {
		return fallback
	}
	// Lowercase first rune, ASCII names only in the library.
	b := []byte(name)
	if b[0] >= 'A' && b[0] <= 'Z' {
		b[0] += 'a' - 'A'
	}
	return string(b)
}

// GenerateVideo materializes a scenario; a convenience re-export so
// examples only import vqpy.
func GenerateVideo(s Scenario) *Video { return s.Generate() }

// Datasets: the scenario presets used across the paper's evaluation.
var (
	DatasetCityFlow    = video.CityFlow
	DatasetBanff       = video.Banff
	DatasetJackson     = video.Jackson
	DatasetSouthampton = video.Southampton
	DatasetAuburn      = video.Auburn
	DatasetVCOCO       = video.VCOCO
	DatasetPickup      = video.Pickup
	DatasetRetail      = video.Retail
)

// RegisterModel registers a user model (Figure 11's register call) under
// the given profile. It returns an error for unknown task kinds.
func (s *Session) RegisterModel(p models.Profile) error {
	if p.Name == "" {
		return fmt.Errorf("vqpy: model profile needs a name")
	}
	switch p.Task {
	case models.TaskDetect, models.TaskClassify, models.TaskEmbed,
		models.TaskHOI, models.TaskOCR, models.TaskBinary:
	default:
		return fmt.Errorf("vqpy: unknown model task %v", p.Task)
	}
	s.registry.Register(p.Name, models.NewFromProfile(p))
	return nil
}
