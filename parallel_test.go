// Parallel-scheduler contract tests at the facade level: ExecuteAll
// must produce results indistinguishable from sequential execution at
// every worker count, for basic, aggregating and higher-order nodes.
package vqpy_test

import (
	"reflect"
	"testing"

	"vqpy"

	"vqpy/internal/bench"
)

func runWorkload(t *testing.T, workers int) []*vqpy.RunResult {
	t.Helper()
	cfg := bench.Config{Seed: 99, Scale: 0.5}
	res, _, err := bench.RunMultiQueryWith(cfg, workers)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return res
}

func TestExecuteAllParallelMatchesSequential(t *testing.T) {
	seq := runWorkload(t, 1)
	for _, workers := range []int{2, 4, 8} {
		par := runWorkload(t, workers)
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if seq[i].Name != par[i].Name {
				t.Fatalf("workers=%d: result %d is %s, want %s", workers, i, par[i].Name, seq[i].Name)
			}
			if !reflect.DeepEqual(seq[i].Matched, par[i].Matched) {
				t.Errorf("workers=%d query %s: matched vectors differ", workers, seq[i].Name)
			}
			if !reflect.DeepEqual(seq[i].Events, par[i].Events) {
				t.Errorf("workers=%d query %s: events differ", workers, seq[i].Name)
			}
			sb, pb := seq[i].Basic, par[i].Basic
			if (sb == nil) != (pb == nil) {
				t.Errorf("workers=%d query %s: basic result presence differs", workers, seq[i].Name)
				continue
			}
			if sb == nil {
				continue
			}
			if !reflect.DeepEqual(sb.Hits, pb.Hits) {
				t.Errorf("workers=%d query %s: hits differ", workers, seq[i].Name)
			}
			if sb.Count != pb.Count || !reflect.DeepEqual(sb.TrackIDs, pb.TrackIDs) {
				t.Errorf("workers=%d query %s: aggregation differs (count %d vs %d)",
					workers, seq[i].Name, sb.Count, pb.Count)
			}
		}
	}
}

// TestExecuteAllHigherOrderNodes runs duration/temporal nodes through
// the pool: higher-order recursion must stay inside one worker and
// still match sequential output.
func TestExecuteAllHigherOrderNodes(t *testing.T) {
	v := vqpy.GenerateVideo(vqpy.DatasetJackson(7, 20))
	build := func() []vqpy.QueryNode {
		base := vqpy.NewQuery("PersonPresent").
			Use("p", vqpy.Person()).
			Where(vqpy.P("p", vqpy.PropScore).Gt(0.5))
		loiter, err := vqpy.NewDurationQuery("Loitering", base, 2)
		if err != nil {
			t.Fatal(err)
		}
		speeding := vqpy.SpeedQuery("Speeding", "car", vqpy.Car(), 10)
		return []vqpy.QueryNode{loiter, speeding}
	}
	run := func(workers int) []*vqpy.RunResult {
		s := vqpy.NewSession(7)
		s.SetNoBurn(true)
		res, err := s.ExecuteAll(build(), v, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	seq := run(1)
	par := run(2)
	for i := range seq {
		if !reflect.DeepEqual(seq[i].Matched, par[i].Matched) {
			t.Errorf("query %s: matched vectors differ", seq[i].Name)
		}
		if !reflect.DeepEqual(seq[i].Events, par[i].Events) {
			t.Errorf("query %s: events differ", seq[i].Name)
		}
	}
}

// TestExecuteAllMergesLedger checks the virtual clock is worker-count
// independent: forked worker ledgers must merge back into the session
// clock.
func TestExecuteAllMergesLedger(t *testing.T) {
	v := vqpy.GenerateVideo(vqpy.DatasetCityFlow(11, 10))
	nodes := func() []vqpy.QueryNode {
		var out []vqpy.QueryNode
		for _, color := range []string{"red", "blue", "black", "white"} {
			out = append(out, vqpy.NewQuery("Q"+color).
				Use("car", vqpy.Car()).
				Where(vqpy.P("car", "color").Eq(color)))
		}
		return out
	}
	run := func(workers int) float64 {
		s := vqpy.NewSession(11)
		s.SetNoBurn(true)
		if _, err := s.ExecuteAll(nodes(), v, workers); err != nil {
			t.Fatal(err)
		}
		return s.Clock().TotalMS()
	}
	seqMS, parMS := run(1), run(4)
	if diff := seqMS - parMS; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("ledger totals differ: sequential %.3f ms vs parallel %.3f ms", seqMS, parMS)
	}
	if seqMS == 0 {
		t.Error("ledger recorded no work")
	}
}
