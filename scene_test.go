package vqpy_test

import (
	"strings"
	"testing"

	"vqpy"
)

// TestSceneVObjAsFrameFilter exercises the special scene VObj (§3): a
// night constraint on the scene must act as a frame filter, dropping day
// frames before any detector runs.
func TestSceneVObjAsFrameFilter(t *testing.T) {
	// Note the constraint deliberately avoids color: the renderer
	// darkens object colors at night, so color classification degrades
	// there (realistic, but not what this test is about).
	q := func() *vqpy.Query {
		return vqpy.NewQuery("CarAtNight").
			Use("scene", vqpy.NightScene()).
			Use("car", vqpy.Car()).
			Where(vqpy.And(
				vqpy.P("scene", "night").Eq(true),
				vqpy.P("car", vqpy.PropScore).Gt(0.5),
			)).
			FrameOutput(vqpy.Sel("car", vqpy.PropTrackID))
	}

	// Day video: the scene filter must reject everything cheaply.
	day := vqpy.DatasetCityFlow(60, 30)
	dayVideo := vqpy.GenerateVideo(day)
	sDay := vqpy.NewSession(60)
	sDay.SetNoBurn(true)
	resDay, err := sDay.Execute(q(), dayVideo, vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized())
	if err != nil {
		t.Fatal(err)
	}
	if resDay.MatchedCount() != 0 {
		t.Errorf("day video matched %d night frames", resDay.MatchedCount())
	}
	// The detector must not have run on (almost) any frame: scene
	// filtering drops frames first.
	if det := sDay.Clock().Account("yolox"); det > 0 {
		// Canary profiling runs on an isolated clock, so any charge
		// here means the main run detected despite the scene filter.
		t.Errorf("detector ran on day video despite scene filter (%.0f ms)", det)
	}

	// Night video: matches should appear.
	night := vqpy.DatasetCityFlow(60, 30)
	night.Night = true
	nightVideo := vqpy.GenerateVideo(night)
	sNight := vqpy.NewSession(60)
	sNight.SetNoBurn(true)
	resNight, err := sNight.Execute(q(), nightVideo, vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized())
	if err != nil {
		t.Fatal(err)
	}
	if resNight.MatchedCount() == 0 {
		t.Error("night video matched nothing")
	}
}

// TestScenePlanShape verifies the planner schedules the scene path
// before detectors.
func TestScenePlanShape(t *testing.T) {
	s := vqpy.NewSession(61)
	s.SetNoBurn(true)
	q := vqpy.NewQuery("NightCars").
		Use("scene", vqpy.NightScene()).
		Use("car", vqpy.Car()).
		Where(vqpy.And(
			vqpy.P("scene", "night").Eq(true),
			vqpy.P("car", vqpy.PropScore).Gt(0.5),
		))
	p, _, err := s.Explain(q, nil, vqpy.WithoutFrameFilters(), vqpy.WithoutSpecialized())
	if err != nil {
		t.Fatal(err)
	}
	plan := p.String()
	scenePos := strings.Index(plan, "scene(scene)")
	detectPos := strings.Index(plan, "detect(")
	if scenePos < 0 || detectPos < 0 {
		t.Fatalf("plan missing steps:\n%s", plan)
	}
	if scenePos > detectPos {
		t.Errorf("scene path not scheduled before detection:\n%s", plan)
	}
	requirePos := strings.Index(plan, "require(scene)")
	if requirePos < 0 || requirePos > detectPos {
		t.Errorf("scene constraint does not gate the detector:\n%s", plan)
	}
}
