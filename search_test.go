package vqpy_test

// Acceptance crosschecks of archive-scale appearance search (DESIGN.md
// §10): the probe-then-verify fast path must answer bit-identically to
// the full-rescan path — including when index coverage ends mid-archive
// and the residual range falls back to ordinary execution — while
// verifying strictly fewer frames.

import (
	"reflect"
	"testing"

	"vqpy"
)

// searchQuery is the archive-search workload: confidently detected cars
// with their track ids and plates — the "find frames where this car
// appears" shape, narrowed by the appearance exemplar rather than a
// symbolic predicate. Its residual (post-scan) operators are stateless
// per-crop properties, so it is index-verifiable.
func searchQuery() *vqpy.Query {
	return vqpy.NewQuery("CarSearch").
		Use("car", vqpy.Car()).
		Where(vqpy.P("car", vqpy.PropScore).Gt(0.6)).
		FrameOutput(vqpy.Sel("car", vqpy.PropTrackID), vqpy.Sel("car", "plate"))
}

// selectiveSearchQuery adds a symbolic color filter on top; for most
// exemplars it excludes the matching entity entirely, pinning the
// empty-intersection case.
func selectiveSearchQuery() *vqpy.Query {
	return vqpy.NewQuery("RedCarSearch").
		Use("car", vqpy.Car()).
		Where(vqpy.And(
			vqpy.P("car", vqpy.PropScore).Gt(0.6),
			vqpy.P("car", "color").Eq("red"),
		)).
		FrameOutput(vqpy.Sel("car", vqpy.PropTrackID), vqpy.Sel("car", "plate"))
}

func searchVideo(seed uint64) *vqpy.Video {
	return vqpy.GenerateVideo(vqpy.DatasetCityFlow(seed, 16))
}

// ingestSearchArchive runs the queries once over the clip with a store
// bound, archiving scan records for later extraction and search.
// Memoization is disabled to match search compilation (Search always
// compiles memo-free; an archive ingested under a different plan merely
// lacks coverage for the fast path, but aligning them here keeps the
// tests on the path they mean to test).
func ingestSearchArchive(t *testing.T, dir string, seed uint64, qs ...*vqpy.Query) {
	t.Helper()
	if len(qs) == 0 {
		qs = []*vqpy.Query{searchQuery()}
	}
	nodes := make([]vqpy.QueryNode, len(qs))
	for i, q := range qs {
		nodes[i] = q
	}
	st, err := vqpy.OpenStore(dir, seed)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := vqpy.NewSession(seed)
	s.SetNoBurn(true)
	if _, err := s.ExecuteShared(nodes, searchVideo(seed), vqpy.WithStore(st), vqpy.WithoutMemo()); err != nil {
		t.Fatal(err)
	}
}

// extractSearchIndex opens the index at xdir and extracts frames
// [covered, upto) from the archived store at sdir in a fresh session.
func extractSearchIndex(t *testing.T, sdir, xdir string, seed uint64, q *vqpy.Query, upto int) vqpy.IndexExtractStats {
	t.Helper()
	st, err := vqpy.OpenStore(sdir, seed)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	x, err := vqpy.OpenIndex(xdir, seed)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	s := vqpy.NewSession(seed)
	s.SetNoBurn(true)
	stats, err := s.IndexArchive(x, q, searchVideo(seed), upto, vqpy.WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// runSearch executes one search in a fresh session over the stored
// archive, optionally with the index attached.
func runSearch(t *testing.T, sdir, xdir string, seed uint64, spec vqpy.SearchSpec) *vqpy.SearchResult {
	t.Helper()
	st, err := vqpy.OpenStore(sdir, seed)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	opts := []vqpy.Option{vqpy.WithStore(st)}
	if xdir != "" {
		x, err := vqpy.OpenIndex(xdir, seed)
		if err != nil {
			t.Fatal(err)
		}
		defer x.Close()
		opts = append(opts, vqpy.WithIndex(x))
	}
	s := vqpy.NewSession(seed)
	s.SetNoBurn(true)
	res, err := s.Search(searchVideo(seed), spec, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameSearchResults(t *testing.T, label string, want, got *vqpy.SearchResult) {
	t.Helper()
	if !reflect.DeepEqual(want.Matched, got.Matched) {
		t.Errorf("%s: matched vectors differ", label)
	}
	if !reflect.DeepEqual(want.Hits, got.Hits) {
		t.Errorf("%s: hits differ", label)
	}
	if !reflect.DeepEqual(want.MatchedTracks, got.MatchedTracks) {
		t.Errorf("%s: matched tracks differ: %v vs %v", label, want.MatchedTracks, got.MatchedTracks)
	}
	if !reflect.DeepEqual(want.Sims, got.Sims) {
		t.Errorf("%s: similarities differ", label)
	}
}

// TestSearchProbeIdenticalToFullScan is the headline crosscheck: over a
// fully indexed archive, probe-then-verify returns bit-identical
// matches, hits and track rankings to the full rescan while executing
// strictly fewer frames.
func TestSearchProbeIdenticalToFullScan(t *testing.T) {
	const seed = 141
	sdir, xdir := t.TempDir(), t.TempDir()
	ingestSearchArchive(t, sdir, seed)
	stats := extractSearchIndex(t, sdir, xdir, seed, searchQuery(), 0)
	n := len(searchVideo(seed).Frames)
	if stats.To != n {
		t.Fatalf("extraction covered [%d, %d), want full clip of %d frames", stats.From, stats.To, n)
	}
	if stats.NewTracks == 0 {
		t.Fatal("extraction indexed no tracks")
	}

	// Exemplar: an indexed track, borrowed by id on the probe path; the
	// full path gets the identical resolved feature vector explicitly.
	exemplar := pickExemplarTrack(t, sdir, xdir, seed)
	probe := runSearch(t, sdir, xdir, seed, vqpy.SearchSpec{Query: searchQuery(), Track: exemplar})
	if !probe.UsedIndex {
		t.Fatal("probe search did not use the index")
	}
	feature := probe.IR.Probe.FeatureRef
	full := runSearch(t, sdir, "", seed, vqpy.SearchSpec{Query: searchQuery(), Feature: feature})
	if full.UsedIndex {
		t.Fatal("full search unexpectedly used an index")
	}

	sameSearchResults(t, "probe vs full", full, probe)
	if len(probe.MatchedTracks) == 0 {
		t.Fatal("search matched no tracks (exemplar should at least match itself)")
	}
	if probe.VerifiedFrames >= full.VerifiedFrames {
		t.Errorf("probe verified %d frames, full %d: no pruning", probe.VerifiedFrames, full.VerifiedFrames)
	}

	// TopK=1 keeps only the best-ranked track and only its frames.
	top1 := runSearch(t, sdir, xdir, seed, vqpy.SearchSpec{Query: searchQuery(), Feature: feature, TopK: 1})
	fullTop1 := runSearch(t, sdir, "", seed, vqpy.SearchSpec{Query: searchQuery(), Feature: feature, TopK: 1})
	sameSearchResults(t, "topk probe vs full", fullTop1, top1)
	if len(top1.MatchedTracks) != 1 || top1.MatchedTracks[0] != probe.MatchedTracks[0] {
		t.Errorf("topk=1 kept %v, want best-ranked %d", top1.MatchedTracks, probe.MatchedTracks[0])
	}
}

// TestSearchResidualFallbackIdentical pins the partial-coverage case:
// with the index stopping at the halfway watermark, the probe path
// verifies candidates inside coverage and full-scans the residual tail
// — still bit-identical to the full rescan.
func TestSearchResidualFallbackIdentical(t *testing.T) {
	const seed = 142
	sdir, xdir := t.TempDir(), t.TempDir()
	ingestSearchArchive(t, sdir, seed)
	n := len(searchVideo(seed).Frames)
	half := n / 2
	stats := extractSearchIndex(t, sdir, xdir, seed, searchQuery(), half)
	if stats.To != half {
		t.Fatalf("extraction covered [%d, %d), want [0, %d)", stats.From, stats.To, half)
	}

	exemplar := pickExemplarTrack(t, sdir, xdir, seed)
	probe := runSearch(t, sdir, xdir, seed, vqpy.SearchSpec{Query: searchQuery(), Track: exemplar})
	if !probe.UsedIndex || probe.Covered != half || probe.ResidualFrames != n-half {
		t.Fatalf("probe path: UsedIndex=%v Covered=%d Residual=%d, want true/%d/%d",
			probe.UsedIndex, probe.Covered, probe.ResidualFrames, half, n-half)
	}
	full := runSearch(t, sdir, "", seed, vqpy.SearchSpec{Query: searchQuery(), Feature: probe.IR.Probe.FeatureRef})
	sameSearchResults(t, "residual probe vs full", full, probe)

	// A second extraction pass resumes from the watermark; re-searching
	// over the now-complete index stays identical and verifies fewer
	// frames than the residual-fallback search did.
	stats2 := extractSearchIndex(t, sdir, xdir, seed, searchQuery(), 0)
	if stats2.From != half || stats2.To != n {
		t.Fatalf("incremental extraction covered [%d, %d), want [%d, %d)", stats2.From, stats2.To, half, n)
	}
	probe2 := runSearch(t, sdir, xdir, seed, vqpy.SearchSpec{Query: searchQuery(), Track: exemplar})
	if !probe2.UsedIndex || probe2.Covered != n {
		t.Fatalf("post-resume probe: UsedIndex=%v Covered=%d, want true/%d", probe2.UsedIndex, probe2.Covered, n)
	}
	sameSearchResults(t, "post-resume probe vs full", full, probe2)
	if probe2.ResidualFrames != 0 {
		t.Errorf("full-coverage probe still ran %d residual frames", probe2.ResidualFrames)
	}
	if probe2.VerifiedFrames >= n {
		t.Errorf("full-coverage probe verified %d of %d frames: no pruning", probe2.VerifiedFrames, n)
	}
}

// TestSearchSelectivePredicateIdentical crosschecks the two paths under
// a query whose symbolic predicate (color = red) intersects the
// appearance match: for most exemplars the intersection is empty, and
// empty must mean empty on both paths — the probe must not manufacture
// matches the predicate rejects, nor the full scan keep frames the
// appearance join drops.
func TestSearchSelectivePredicateIdentical(t *testing.T) {
	const seed = 143
	sdir, xdir := t.TempDir(), t.TempDir()
	q := selectiveSearchQuery()
	ingestSearchArchive(t, sdir, seed, q)
	if stats := extractSearchIndex(t, sdir, xdir, seed, q, 0); stats.NewTracks == 0 {
		t.Fatal("extraction indexed no tracks")
	}
	exemplar := pickExemplarTrack(t, sdir, xdir, seed)
	probe := runSearch(t, sdir, xdir, seed, vqpy.SearchSpec{Query: q, Track: exemplar})
	if !probe.UsedIndex {
		t.Fatal("probe search did not use the index")
	}
	full := runSearch(t, sdir, "", seed, vqpy.SearchSpec{Query: q, Feature: probe.IR.Probe.FeatureRef})
	sameSearchResults(t, "selective probe vs full", full, probe)
}

// pickExemplarTrack returns a track id that is certainly indexed: the
// first track of the first search hit under a throwaway full search.
func pickExemplarTrack(t *testing.T, sdir, xdir string, seed uint64) int {
	t.Helper()
	st, err := vqpy.OpenStore(sdir, seed)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	x, err := vqpy.OpenIndex(xdir, seed)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	if ex, ok := x.Exemplar(); ok {
		return ex.Track
	}
	t.Fatal("index holds no embeddable entry to use as an exemplar")
	return -1
}
