package vqpy_test

import (
	"reflect"
	"testing"

	"vqpy"
)

// Fresh query values per run: query nodes are stateless, but building
// them per session keeps the two executions fully independent.

func servingRedCar() *vqpy.Query {
	return vqpy.NewQuery("RedCar").
		Use("car", vqpy.Car()).
		Where(vqpy.And(
			vqpy.P("car", vqpy.PropScore).Gt(0.6),
			vqpy.P("car", "color").Eq("red"),
		)).
		FrameOutput(vqpy.Sel("car", vqpy.PropTrackID), vqpy.Sel("car", "color"))
}

func servingPlates() *vqpy.Query {
	return vqpy.NewQuery("Plates").
		Use("car", vqpy.Car()).
		Where(vqpy.P("car", vqpy.PropScore).Gt(0.7)).
		FrameOutput(vqpy.Sel("car", "plate"))
}

func servingBlueCount() *vqpy.Query {
	return vqpy.NewQuery("BlueCars").
		Use("car", vqpy.Car()).
		Where(vqpy.And(
			vqpy.P("car", vqpy.PropScore).Gt(0.6),
			vqpy.P("car", "color").Eq("blue"),
		)).
		CountDistinct("car")
}

func servingPeople() *vqpy.Query {
	return vqpy.NewQuery("People").
		Use("p", vqpy.Person()).
		Where(vqpy.P("p", vqpy.PropScore).Gt(0.5)).
		FrameOutput(vqpy.Sel("p", vqpy.PropTrackID))
}

// TestAttachDetachIdenticalToFreshOpen is the dynamic-serving acceptance
// crosscheck: a MuxStream that suffered an arbitrary attach/detach churn
// must leave its full-duration queries with results bit-identical to a
// fresh OpenShared of exactly the surviving set — detaching a query (and
// tearing down its tracker lane, or its whole group) never perturbs
// siblings, and attaching mid-stream warm-starts from shared state
// without resetting it.
func TestAttachDetachIdenticalToFreshOpen(t *testing.T) {
	const seed = 77
	v := vqpy.GenerateVideo(vqpy.DatasetCityFlow(seed, 12))
	n := len(v.Frames)

	// Reference: the surviving set on a fresh shared stream.
	ref := vqpy.NewSession(seed)
	ref.SetNoBurn(true)
	mRef, err := ref.OpenShared([]*vqpy.Query{servingRedCar(), servingPlates()}, v, v.FPS)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := mRef.Feed(v.FrameAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	refRes := mRef.Close()

	// Churned: same two survivors on a dynamic stream, with a same-group
	// joiner (BlueCars rides the car-detector group) and a new-group
	// joiner (People) coming and going mid-stream.
	s := vqpy.NewSession(seed)
	s.SetNoBurn(true)
	m, err := s.Serve(v.FPS)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.AttachQuery(m, servingRedCar(), v); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.AttachQuery(m, servingPlates(), v); err != nil {
		t.Fatal(err)
	}
	baseGroups := len(m.GroupMembers())

	blue, people := -1, -1
	for i := 0; i < n; i++ {
		switch i {
		case n / 4:
			if blue, _, err = s.AttachQuery(m, servingBlueCount(), v); err != nil {
				t.Fatal(err)
			}
		case n / 3:
			if people, _, err = s.AttachQuery(m, servingPeople(), v); err != nil {
				t.Fatal(err)
			}
		case 2 * n / 3:
			blueRes, err := m.Detach(blue)
			if err != nil {
				t.Fatal(err)
			}
			if blueRes.FramesProcessed != 2*n/3-n/4 {
				t.Errorf("churned lane processed %d frames, want %d", blueRes.FramesProcessed, 2*n/3-n/4)
			}
			if _, err := m.Detach(people); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := m.Feed(v.FrameAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(m.GroupMembers()); got != baseGroups {
		t.Errorf("groups after churn = %d, want %d (churned groups torn down)", got, baseGroups)
	}
	res := m.Close()
	if len(res) != len(refRes) {
		t.Fatalf("%d surviving results, want %d", len(res), len(refRes))
	}
	for i := range refRes {
		if res[i].Query != refRes[i].Query {
			t.Fatalf("survivor %d: query %q vs %q", i, res[i].Query, refRes[i].Query)
		}
		if !reflect.DeepEqual(res[i].Matched, refRes[i].Matched) {
			t.Errorf("survivor %s: matched vectors differ", res[i].Query)
		}
		if !reflect.DeepEqual(res[i].Hits, refRes[i].Hits) {
			t.Errorf("survivor %s: hits differ", res[i].Query)
		}
		if res[i].Count != refRes[i].Count || !reflect.DeepEqual(res[i].TrackIDs, refRes[i].TrackIDs) {
			t.Errorf("survivor %s: aggregation differs", res[i].Query)
		}
		if res[i].MemoHits != refRes[i].MemoHits || res[i].MemoMisses != refRes[i].MemoMisses {
			t.Errorf("survivor %s: memo stats differ (%d/%d vs %d/%d)", res[i].Query,
				res[i].MemoHits, res[i].MemoMisses, refRes[i].MemoHits, refRes[i].MemoMisses)
		}
	}
}

// TestServeAdmissionInputs sanity-checks the signals the serving layer
// builds admission on: AttachQuery returns the canary-profiled plan
// (EstCostMS > 0 with a canary) and LaneStats exposes live per-lane
// accounting.
func TestServeAdmissionInputs(t *testing.T) {
	v := vqpy.GenerateVideo(vqpy.DatasetCityFlow(7, 6))
	s := vqpy.NewSession(7)
	s.SetNoBurn(true)
	m, err := s.Serve(v.FPS)
	if err != nil {
		t.Fatal(err)
	}
	id, p, err := s.AttachQuery(m, servingRedCar(), v)
	if err != nil {
		t.Fatal(err)
	}
	if p.EstCostMS <= 0 {
		t.Errorf("EstCostMS = %f, want > 0 (canary profiling)", p.EstCostMS)
	}
	for i := 0; i < 5; i++ {
		if _, err := m.Feed(v.FrameAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	stats := m.LaneStats()
	if len(stats) != 1 || stats[0].ID != id || stats[0].Frames != 5 {
		t.Fatalf("lane stats = %+v", stats)
	}
	if stats[0].VirtualMS <= 0 {
		t.Error("lane VirtualMS not accounted")
	}
	if stats[0].Query != "RedCar" {
		t.Errorf("lane query = %q", stats[0].Query)
	}
}
