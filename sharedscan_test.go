package vqpy_test

import (
	"reflect"
	"testing"

	"vqpy"

	"vqpy/internal/bench"
)

// TestSharedScanIdenticalToPerQuery is the shared-scan acceptance
// crosscheck: ExecuteShared over the 8-query serving workload must
// produce results identical to sequential per-query execution — matched
// vectors, events, hits, aggregations — while the ledger shows the scan
// work collapsing (tracker runs once per scan group per frame instead
// of once per query per frame, and detector invocations stay at one per
// (model, frame)).
func TestSharedScanIdenticalToPerQuery(t *testing.T) {
	cfg := bench.Config{Seed: 77, Scale: 0.25}

	seq, _, seqSession, err := bench.RunMuxScanWith(cfg, "runall-seq", 1)
	if err != nil {
		t.Fatal(err)
	}
	shared, _, sharedSession, err := bench.RunMuxScanWith(cfg, "muxscan", 1)
	if err != nil {
		t.Fatal(err)
	}

	if len(seq) != len(shared) {
		t.Fatalf("%d vs %d results", len(seq), len(shared))
	}
	for i := range seq {
		if seq[i].Name != shared[i].Name {
			t.Fatalf("query %d: name %q vs %q", i, seq[i].Name, shared[i].Name)
		}
		if !reflect.DeepEqual(seq[i].Matched, shared[i].Matched) {
			t.Errorf("query %s: matched vectors differ", seq[i].Name)
		}
		if !reflect.DeepEqual(seq[i].Events, shared[i].Events) {
			t.Errorf("query %s: events differ", seq[i].Name)
		}
		sb, hb := seq[i].Basic, shared[i].Basic
		if (sb == nil) != (hb == nil) {
			t.Fatalf("query %s: basic result presence differs", seq[i].Name)
		}
		if sb != nil {
			if !reflect.DeepEqual(sb.Hits, hb.Hits) {
				t.Errorf("query %s: hits differ", seq[i].Name)
			}
			if sb.Count != hb.Count || !reflect.DeepEqual(sb.TrackIDs, hb.TrackIDs) {
				t.Errorf("query %s: aggregation differs", seq[i].Name)
			}
		}
	}

	seqTrack := seqSession.Clock().Invocations("tracker")
	sharedTrack := sharedSession.Clock().Invocations("tracker")
	if sharedTrack >= seqTrack {
		t.Errorf("shared scan did not reduce tracker work: %d vs %d invocations",
			sharedTrack, seqTrack)
	}

	// Detector work is already deduplicated by the cache on the
	// sequential path; the shared scan must not add any.
	if sd, qd := sharedDetects(sharedSession), sharedDetects(seqSession); sd > qd {
		t.Errorf("shared scan ran more detector invocations (%d) than per-query (%d)", sd, qd)
	}
}

// sharedDetects sums detector-model invocation counts from a session's
// ledger (detector accounts are the model names).
func sharedDetects(s *vqpy.Session) int64 {
	var total int64
	for name, n := range s.Clock().InvocationTotals() {
		switch name {
		case "yolox", "yolov8m", "yolov5s", "car_detector", "person_detector",
			"red_car_specialized", "ball_person_cheap":
			total += n
		}
	}
	return total
}
