package vqpy

// Text queries (DESIGN.md §13): a constrained natural-language frontend
// over the library. CompileText parses a sentence like "red car seen on
// the crosswalk for 2 seconds" against the library catalog and lowers
// it onto the ordinary query IR; Session.Text runs the compiled query
// as a lazy cascade — the cheap closed-vocabulary pipeline decides most
// frames, and the simulated open-vocabulary verifier (models.SimVLM) is
// consulted only on the frames the cascade could not rule out.

import (
	"vqpy/internal/plan"
	"vqpy/internal/video"
	"vqpy/internal/vql"
)

type (
	// TextQuery is a compiled text query: the closed-vocabulary cascade
	// query plus the open-vocabulary remainder for the verify stage.
	TextQuery = vql.Compiled
	// TextSpec is the planner-side lowering of a TextQuery.
	TextSpec = plan.TextSpec
	// TextResult is the outcome of Session.Text.
	TextResult = plan.TextResult
	// TextCatalogEntry maps one query-language word onto a library type.
	TextCatalogEntry = vql.CatalogEntry
)

// WithEagerVerify makes Session.Text consult the verifier on every
// processed frame instead of lazily on cascade-matched frames only. The
// verifier is deterministic per (seed, frame, question), so eager runs
// produce bit-identical verdicts at strictly higher cost; they exist as
// the parity baseline (vqbench -exp text).
func WithEagerVerify() Option {
	return func(c *config) { c.eagerVerify = true }
}

// TextCatalog returns the vql catalog backed by the library VObjs: the
// class words the text grammar accepts and the type each lowers onto.
func TextCatalog() vql.Catalog {
	return vql.NewCatalog(
		vql.CatalogEntry{Word: "car", Class: video.ClassCar, Instance: "car", New: Car},
		vql.CatalogEntry{Word: "truck", Class: video.ClassTruck, Instance: "truck", New: Truck},
		vql.CatalogEntry{Word: "bus", Class: video.ClassBus, Instance: "bus", New: Bus},
		vql.CatalogEntry{Word: "person", Class: video.ClassPerson, Instance: "person", New: Person},
		vql.CatalogEntry{Word: "ball", Class: video.ClassBall, Instance: "ball", New: Ball},
	)
}

// CompileText compiles a text query against the library catalog. The
// returned query's cascade part is a regular *Query named
// "Text(<canonical>)" that can also be planned and explained directly.
func CompileText(text string) (*TextQuery, error) {
	return vql.Compile(text, TextCatalog())
}

// TextSpecOf lowers a compiled text query into the planner's spec.
func TextSpecOf(tq *TextQuery) TextSpec {
	return plan.TextSpec{
		Query: tq.Query, Class: tq.Class,
		Concepts: tq.Concepts, MinSeconds: tq.MinSeconds,
	}
}

// Text compiles and runs a text query over a video. The cascade decides
// every frame it can; undecided (cascade-matched) frames go to the
// open-vocabulary verifier, and an optional duration clause folds over
// the verified verdicts.
func (s *Session) Text(text string, v *Video, opts ...Option) (*TextResult, error) {
	tq, err := CompileText(text)
	if err != nil {
		return nil, err
	}
	pl, cfg, err := s.planner(opts...)
	if err != nil {
		return nil, err
	}
	return pl.RunText(TextSpecOf(tq), v, cfg.eagerVerify)
}
