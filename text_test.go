package vqpy_test

// Facade tests for text queries: CompileText against the library
// catalog, Session.Text's lazy cascade, and the eager parity baseline.

import (
	"slices"
	"strings"
	"testing"

	vqpy "vqpy"
)

func TestCompileTextAgainstLibraryCatalog(t *testing.T) {
	tq, err := vqpy.CompileText("a red car that is parked near the crosswalk")
	if err != nil {
		t.Fatal(err)
	}
	if tq.Query.Name() != "Text(red car stopped on crosswalk)" {
		t.Errorf("compiled name = %q", tq.Query.Name())
	}
	if !slices.Equal(tq.Concepts, []string{"stopped", "on crosswalk"}) {
		t.Errorf("concepts = %v", tq.Concepts)
	}

	// Every catalog class word compiles.
	for _, text := range []string{"car", "truck", "bus", "person", "ball"} {
		if _, err := vqpy.CompileText(text); err != nil {
			t.Errorf("CompileText(%q): %v", text, err)
		}
	}

	// Parse errors surface with positions; type mismatches are refused.
	if _, err := vqpy.CompileText("purple banana"); err == nil || !strings.HasPrefix(err.Error(), "vql: ") {
		t.Errorf("bad text err = %v", err)
	}
	if _, err := vqpy.CompileText("person faster than 3"); err == nil {
		t.Error("velocity clause on a velocity-free type compiled")
	}
}

func TestSessionTextLazyEagerParity(t *testing.T) {
	v := vqpy.GenerateVideo(vqpy.DatasetCityFlow(42, 10))

	lazy, err := vqpy.NewSession(42).Text("red car stopped", v)
	if err != nil {
		t.Fatal(err)
	}
	eager, err := vqpy.NewSession(42).Text("red car stopped", v, vqpy.WithEagerVerify())
	if err != nil {
		t.Fatal(err)
	}

	if !slices.Equal(lazy.Matched, eager.Matched) {
		t.Fatal("lazy and eager verdicts diverged")
	}
	if lazy.VLMCalls != lazy.CascadeMatched {
		t.Errorf("lazy calls %d, want cascade-matched %d", lazy.VLMCalls, lazy.CascadeMatched)
	}
	if eager.VLMCalls != eager.Frames {
		t.Errorf("eager calls %d, want every frame (%d)", eager.VLMCalls, eager.Frames)
	}
	if eager.VirtualMS <= lazy.VirtualMS {
		t.Errorf("eager cost %.1f not above lazy %.1f", eager.VirtualMS, lazy.VirtualMS)
	}
	if lazy.Name != "Text(red car stopped)" {
		t.Errorf("result name = %q", lazy.Name)
	}
	if lazy.IR == nil {
		t.Error("result carries no IR")
	}
}

func TestSessionTextConceptFree(t *testing.T) {
	v := vqpy.GenerateVideo(vqpy.DatasetCityFlow(42, 6))
	res, err := vqpy.NewSession(42).Text("red car", v)
	if err != nil {
		t.Fatal(err)
	}
	if res.VLMCalls != 0 {
		t.Errorf("concept-free query made %d verifier calls", res.VLMCalls)
	}
	if res.MatchedCount() != res.CascadeMatched {
		t.Errorf("concept-free matches %d != cascade %d", res.MatchedCount(), res.CascadeMatched)
	}
}
