// Package vqpy is a Go implementation of VQPy, the video-object-oriented
// query system of "VQPy: An Object-Oriented Approach to Modern Video
// Analytics" (MLSys 2024).
//
// The public API mirrors the paper's three frontend constructs:
//
//   - VObj types declare the video objects of interest, their detection
//     models and their stateless / stateful / intrinsic properties
//     (NewVObj, the builders on VObjType, and the ready-made library
//     types Car, Bus, Person, Ball).
//   - Relations declare spatial or temporal relationships between VObjs
//     (NewRelation, DistanceRelation, PersonBallInteraction).
//   - Queries combine VObjs and Relations with frame- and video-level
//     constraints (NewQuery, predicates built from P/RP with And/Or/Not),
//     and compose into higher-order events (NewSpatialQuery,
//     NewDurationQuery, NewTemporalQuery; library shortcuts SpeedQuery,
//     CollisionQuery).
//
// A Session owns the model registry and virtual clock and executes query
// nodes over videos through the backend planner and engine:
//
//	s := vqpy.NewSession(42)
//	car := vqpy.Car()
//	q := vqpy.NewQuery("RedCar").Use("car", car).
//		Where(vqpy.And(
//			vqpy.P("car", vqpy.PropScore).Gt(0.6),
//			vqpy.P("car", "color").Eq("red"),
//		)).
//		FrameOutput(vqpy.Sel("car", vqpy.PropTrackID), vqpy.Sel("car", vqpy.PropBBox))
//	res, err := s.Execute(q, videoClip)
//
// Because this repository is an offline reproduction, videos come from
// the synthetic scenario generator (internal/video re-exported through
// the Scenario helpers here) and models from a simulated zoo; see
// DESIGN.md for the substitution map.
package vqpy

import (
	"vqpy/internal/core"
	"vqpy/internal/exec"
	"vqpy/internal/fault"
	"vqpy/internal/index"
	"vqpy/internal/models"
	"vqpy/internal/plan"
	"vqpy/internal/sim"
	"vqpy/internal/store"
	"vqpy/internal/video"
)

// Re-exported frontend types. These are aliases, so values flow freely
// between the facade and the internal packages.
type (
	// VObjType declares a type of video object (§3).
	VObjType = core.VObjType
	// Property declares a VObj property.
	Property = core.Property
	// PropInput is the context handed to property compute functions.
	PropInput = core.PropInput
	// RelationType declares a relation between VObj types.
	RelationType = core.RelationType
	// RelInput is the context handed to relation compute functions.
	RelInput = core.RelInput
	// Query is a basic query.
	Query = core.Query
	// QueryNode is any executable query (basic or higher-order).
	QueryNode = core.QueryNode
	// SpatialQuery / DurationQuery / TemporalQuery are the higher-order
	// combinators of §3.
	SpatialQuery = core.SpatialQuery
	// DurationQuery checks a condition holds for a minimum duration.
	DurationQuery = core.DurationQuery
	// TemporalQuery sequences two events within a window.
	TemporalQuery = core.TemporalQuery
	// Pred is a predicate tree.
	Pred = core.Pred
	// Selector names an output column.
	Selector = core.Selector
	// RunResult is the outcome of executing a query node.
	RunResult = plan.RunResult
	// Plan is a physical execution plan.
	Plan = exec.Plan
	// Event is a matched frame span.
	Event = exec.Event
	// Video is a frame sequence (synthetic in this reproduction).
	Video = video.Video
	// Scenario configures the synthetic video generator.
	Scenario = video.Scenario
	// FrameSource is the decode-once stream abstraction the shared-scan
	// engine reads from; *Video and ScenarioSource satisfy it.
	FrameSource = video.FrameSource
	// ScenarioSource adapts the scenario generator as a FrameSource.
	ScenarioSource = video.ScenarioSource
)

// Re-exported constructors and predicate builders.
var (
	// NewVObj declares a new VObj type.
	NewVObj = core.NewVObj
	// NewRelation declares a relation type.
	NewRelation = core.NewRelation
	// DistanceRelation is a ready-made centroid-distance relation.
	DistanceRelation = core.DistanceRelation
	// NewQuery declares a basic query.
	NewQuery = core.NewQuery
	// NewSpatialQuery / NewDurationQuery / NewTemporalQuery build
	// higher-order queries, enforcing composition rules 1-3.
	NewSpatialQuery  = core.NewSpatialQuery
	NewDurationQuery = core.NewDurationQuery
	NewTemporalQuery = core.NewTemporalQuery
	// P references an instance property; RP a relation property.
	P  = core.P
	RP = core.RP
	// And / Or / Not combine predicates (the paper's & | ¬).
	And = core.And
	Or  = core.Or
	Not = core.Not
	// Sel builds an output selector.
	Sel = core.Sel
	// SceneVObj returns the special scene VObj.
	SceneVObj = core.Scene
	// NewScenarioSource wraps a scenario as a FrameSource.
	NewScenarioSource = video.NewScenarioSource
)

// Built-in property names (see core documentation).
const (
	PropBBox     = core.PropBBox
	PropCenter   = core.PropCenter
	PropScore    = core.PropScore
	PropTrackID  = core.PropTrackID
	PropClass    = core.PropClass
	PropFrameIdx = core.PropFrameIdx
)

// Session owns the execution context: the model registry (the paper's
// library model zoo plus user registrations) and the virtual clock that
// accounts all simulated model work.
type Session struct {
	env      *models.Env
	registry *models.Registry
	faults   *fault.Injector
}

// NewSession creates a session with the built-in model zoo and a fresh
// virtual clock. The seed drives every stochastic component, making
// executions reproducible.
func NewSession(seed uint64) *Session {
	return &Session{
		env:      models.NewEnv(seed),
		registry: models.BuiltinRegistry(),
	}
}

// Registry exposes the model registry for custom registrations
// (Figure 11's register call).
func (s *Session) Registry() *models.Registry { return s.registry }

// Clock exposes the session's virtual-time ledger.
func (s *Session) Clock() *sim.Clock { return s.env.Clock }

// Env exposes the model environment (needed when driving models
// directly, e.g. in baselines).
func (s *Session) Env() *models.Env { return s.env }

// SetNoBurn disables proportional real CPU work (useful in unit tests;
// benchmarks should leave burning on so wall time mirrors virtual time).
func (s *Session) SetNoBurn(noBurn bool) { s.env.NoBurn = noBurn }

// SetFaults installs a deterministic fault injector on the session's
// serving paths (Serve, OpenShared, OpenStream): model calls gate
// through its schedule (absorbed by retry, then circuit breakers and
// graceful degradation; see internal/fault and DESIGN.md §9). The
// injector chains in front of any ChargeInterceptor already installed
// (a fleet batch scheduler), so call it after that wiring. A nil
// injector — or one with an empty schedule — leaves results
// bit-identical to a fault-free session (the no-op guarantee pinned by
// TestFaultInjectorNoop). Planner-driven paths (Execute, ExecuteAll,
// ExecuteShared, PlanQuery profiling) stay fault-free on purpose: plan
// selection must not depend on transient chaos.
func (s *Session) SetFaults(inj *fault.Injector) {
	s.faults = inj
	if inj != nil {
		inj.Wrap(s.env.Interceptor)
		s.env.Interceptor = inj
	}
}

// Faults returns the injector installed by SetFaults, or nil.
func (s *Session) Faults() *fault.Injector { return s.faults }

// config collects per-execution options.
type config struct {
	planOpts plan.Options

	// eagerVerify makes Session.Text consult the open-vocabulary
	// verifier on every frame instead of lazily (text.go).
	eagerVerify bool
}

// Option customizes one Execute call.
type Option func(*config)

// WithBatchSize sets the executor batch width.
func WithBatchSize(n int) Option {
	return func(c *config) { c.planOpts.BatchSize = n }
}

// WithAccuracyTarget sets the minimum canary F1 for optimized plans.
func WithAccuracyTarget(f float64) Option {
	return func(c *config) { c.planOpts.AccuracyTarget = f }
}

// WithCanaryFrames sets the profiling prefix length.
func WithCanaryFrames(n int) Option {
	return func(c *config) { c.planOpts.CanaryFrames = n }
}

// WithoutMemo disables intrinsic-property memoization (the vanilla VQPy
// configuration of §5.1).
func WithoutMemo() Option {
	return func(c *config) { c.planOpts.DisableMemo = true }
}

// WithoutFrameFilters disables registered frame filters (the EVA-fair
// configuration of §5.2).
func WithoutFrameFilters() Option {
	return func(c *config) { c.planOpts.DisableFrameFilters = true }
}

// WithoutSpecialized disables registered specialized NNs.
func WithoutSpecialized() Option {
	return func(c *config) { c.planOpts.DisableSpecialized = true }
}

// WithoutFusion disables operator fusion.
func WithoutFusion() Option {
	return func(c *config) { c.planOpts.DisableFusion = true }
}

// WithoutLazy disables lazy property evaluation (ablation: all
// properties are computed before any filtering).
func WithoutLazy() Option {
	return func(c *config) { c.planOpts.DisableLazy = true }
}

// WithSharedCache enables query-level computation reuse across Execute
// calls sharing the cache (§4.2, §5.3's VQPy-Opt).
func WithSharedCache(cache *exec.SharedCache) Option {
	return func(c *config) { c.planOpts.Cache = cache }
}

// WithPlanCache reuses previously profiled plan selections.
func WithPlanCache(pc *plan.PlanCache) Option {
	return func(c *config) { c.planOpts.PlanCache = pc }
}

// WithEdgePlacement enables §4.1 operator placement: pre-detector
// operators (frame filters, the scene path) run on the edge device and
// every frame surviving them is charged uplinkMS of transfer cost. Per-
// device subtotals appear in the clock ledger as device:edge /
// device:server / net:uplink.
func WithEdgePlacement(uplinkMS float64) Option {
	return func(c *config) { c.planOpts.EdgeUplinkMS = uplinkMS }
}

// WithResultCache materializes whole query results keyed by query
// structure and video identity (§4.2): a repeated Execute of the same
// query on the same video returns the stored result without touching a
// single frame.
func WithResultCache(rc *plan.ResultCache) Option {
	return func(c *config) { c.planOpts.ResultCache = rc }
}

// WithStore enables the tiered persistent result store: detector
// outputs, shared-scan track ids and evaluated VObj property values are
// consulted before any model runs (a hit costs zero virtual time) and
// persisted on miss — so a second pass over the same source, even in a
// new process, replays archived results instead of recomputing them
// (DESIGN.md §7). Open one with OpenStore using the session's seed;
// records from a different seed are invalid and refused at open.
func WithStore(st *Store) Option {
	return func(c *config) { c.planOpts.Store = st }
}

// Store is the tiered persistent result store (in-memory LRU over an
// on-disk archive); see internal/store and DESIGN.md §7.
type Store = store.Store

// StoreStats summarizes a store's tiers (Store.TierStats).
type StoreStats = store.Stats

// OpenStore opens (creating if needed) a persistent result store rooted
// at dir for sessions seeded with seed. A directory written under a
// different seed or store format version is invalidated rather than
// served — its records would not match what live models compute.
func OpenStore(dir string, seed uint64) (*Store, error) {
	return store.Open(dir, store.Meta{Seed: seed}, store.Options{})
}

// OpenStoreOptions is OpenStore with an explicit hot-tier capacity
// (records held in memory per record kind before LRU eviction to the
// disk tier); memRecords <= 0 uses the store default.
func OpenStoreOptions(dir string, seed uint64, memRecords int) (*Store, error) {
	return store.Open(dir, store.Meta{Seed: seed}, store.Options{MemRecords: memRecords})
}

// OpenStoreWithFaults is OpenStore with the store's I/O paths routed
// through a fault injector: writes consult inj.StoreWriteFault (a
// failure degrades that tier to memory-only) and disk reads consult
// inj.StoreReadFault (a failure serves the read as a miss, forcing a
// recompute). A nil injector behaves exactly like OpenStore.
func OpenStoreWithFaults(dir string, seed uint64, inj *FaultInjector) (*Store, error) {
	opts := store.Options{}
	if inj != nil {
		opts.WriteFault = inj.StoreWriteFault
		opts.ReadFault = inj.StoreReadFault
	}
	return store.Open(dir, store.Meta{Seed: seed}, opts)
}

// Archive-scale appearance search (internal/index, DESIGN.md §10): an
// on-disk ANN-style index over per-track appearance embeddings
// extracted from a store's archived records. Searches probe it for
// candidate tracks and verify only the frames they span — sub-linear in
// archive length — falling back to a full rescan of any uncovered
// residual range, with results bit-identical to the full scan either
// way.
type (
	// Index is the persistent appearance index.
	Index = index.Index
	// IndexStats summarizes an index (Index.TierStats).
	IndexStats = index.Stats
	// IndexExtractStats reports one IndexArchive extraction pass.
	IndexExtractStats = index.ExtractStats
	// SearchSpec parameterizes Session.Search.
	SearchSpec = plan.SearchSpec
	// SearchResult is the outcome of Session.Search.
	SearchResult = plan.SearchResult
)

// OpenIndex opens (creating if needed) an appearance index rooted at
// dir for sessions seeded with seed. Like the store, an index written
// under a different seed — or a different index format or model-zoo
// version — is invalidated rather than served: its embeddings would not
// match what live models compute.
func OpenIndex(dir string, seed uint64) (*Index, error) {
	return index.Open(dir, index.Meta{
		Version: index.FormatVersion, Seed: seed,
		ZooVersion: models.ZooVersion, Embedder: "fleet_reid",
	})
}

// WithIndex makes the appearance index available to Search (and any
// other planner path that can use it as an access path). Requires
// WithStore on the same call: the index accelerates queries over the
// archive, it is never a source of truth.
func WithIndex(x *Index) Option {
	return func(c *config) { c.planOpts.Index = x }
}

// Search answers an appearance search over src: which archived tracks
// of spec.Query's class look like the exemplar (spec.Feature, or the
// stored embedding of spec.Track), and on which frames do they satisfy
// the query? With WithIndex the probe-then-verify fast path runs where
// index coverage allows; without it (or where coverage ends) the full
// rescan runs. Results are bit-identical either way — only cost
// differs. Requires WithStore.
func (s *Session) Search(src FrameSource, spec SearchSpec, opts ...Option) (*SearchResult, error) {
	pl, _, err := s.planner(opts...)
	if err != nil {
		return nil, err
	}
	return pl.Search(src, spec)
}

// IndexArchive incrementally extracts the appearance index from the
// archived records of q's scan group, walking frames [covered, upto)
// (upto <= 0 means the whole source). Each distinct track is embedded
// exactly once, at its first archived sighting, charged on the session
// clock; later passes resume from the coverage watermark. Requires
// WithStore; a store read fault stops the watermark at the failing
// frame (counter index_faulted_reads), leaving that range to Search's
// full-rescan fallback.
func (s *Session) IndexArchive(x *Index, q *Query, src FrameSource, upto int, opts ...Option) (IndexExtractStats, error) {
	pl, _, err := s.planner(opts...)
	if err != nil {
		return IndexExtractStats{}, err
	}
	return pl.IndexArchive(x, q, src, upto, nil)
}

// WarmSearchArchive runs q's search pipeline over frames [0, upto)
// with the store bound, building archive coverage under the search
// scan signature — the cold-start ingest before IndexArchive when the
// clip was never executed store-backed (or only under a memoizing
// plan, whose signature differs). Already-archived frames replay at
// near-zero model cost, so warming is idempotent. upto <= 0 warms the
// whole clip. Requires WithStore.
func (s *Session) WarmSearchArchive(q *Query, src FrameSource, upto int, opts ...Option) error {
	pl, _, err := s.planner(opts...)
	if err != nil {
		return err
	}
	return pl.WarmSearchArchive(q, src, upto)
}

// Multi-fidelity archives and fidelity-aware planning (DESIGN.md §12):
// a source can be archived at several points of the (frame stride ×
// resolution tier × detector tier) lattice, and a query that declares
// an accuracy floor is answered from the cheapest archived fidelity
// meeting it, live-scanning only the uncovered residual.
type (
	// Fidelity is one scan config of the lattice.
	Fidelity = video.Fidelity
	// ResTier is a decode resolution tier.
	ResTier = video.ResTier
	// FidelityEntry is one archived fidelity in a store's manifest.
	FidelityEntry = store.FidelityEntry
	// FidelityCandidate is one priced way of answering a query.
	FidelityCandidate = plan.FidelityCandidate
	// FidelityDecision records one fidelity planning outcome.
	FidelityDecision = plan.FidelityDecision
	// FidelityResult is the outcome of ExecuteFidelity.
	FidelityResult = plan.FidelityResult
)

// Resolution tiers, full to quarter.
const (
	ResFull    = video.ResFull
	ResHalf    = video.ResHalf
	ResQuarter = video.ResQuarter
)

// FidelityLattice returns the built-in scan-config lattice for a
// query whose full-fidelity detector is fullDetector (models.
// FidelityLattice): full fidelity first, then progressively cheaper
// stride/resolution/detector tiers.
var FidelityLattice = models.FidelityLattice

// WithMinAccuracy declares the query's accuracy floor for fidelity-
// aware planning: ExecuteFidelity may answer from any archived
// fidelity whose calibrated effective accuracy is at least a. Leaving
// it unset (or setting 1) demands exact answers, which only the live
// full-fidelity path provides — fidelity serving is opt-in per query.
func WithMinAccuracy(a float64) Option {
	return func(c *config) { c.planOpts.MinAccuracy = a }
}

// ArchiveFidelity scans frames [0, upto) of src at fidelity fid
// (stride-aligned frames only), archives the tier's records under a
// fidelity-decorated scan signature, calibrates the tier's accuracy
// against ground truth and records it in the store's fidelity
// manifest. upto <= 0 archives the whole source; re-archiving is
// idempotent. Requires WithStore.
func (s *Session) ArchiveFidelity(q *Query, src FrameSource, fid Fidelity, upto int, opts ...Option) (FidelityEntry, error) {
	pl, _, err := s.planner(opts...)
	if err != nil {
		return FidelityEntry{}, err
	}
	return pl.ArchiveFidelity(q, src, fid, upto)
}

// PlanFidelity prices every way of answering q over [0, frames) — the
// live full-fidelity scan plus each readable archived fidelity — and
// returns the decision without executing it. Requires WithStore.
func (s *Session) PlanFidelity(q *Query, src FrameSource, frames int, opts ...Option) (*FidelityDecision, error) {
	pl, _, err := s.planner(opts...)
	if err != nil {
		return nil, err
	}
	d, _, err := pl.PlanFidelity(q, src, frames)
	return d, err
}

// ExecuteFidelity answers q over frames [0, frames) under the accuracy
// floor declared with WithMinAccuracy: the planner picks the cheapest
// archived fidelity meeting the floor (falling back live past
// unreadable tiers) and replays it, scanning only the uncovered
// residual at full fidelity. frames <= 0 means the whole source.
// Requires WithStore.
func (s *Session) ExecuteFidelity(q *Query, src FrameSource, frames int, opts ...Option) (*FidelityResult, error) {
	pl, _, err := s.planner(opts...)
	if err != nil {
		return nil, err
	}
	return pl.RunFidelity(q, src, frames)
}

// Deterministic fault injection (internal/fault, DESIGN.md §9): a
// FaultSchedule of FaultRules drives a seeded FaultInjector installed
// with Session.SetFaults and wired into a store via
// OpenStoreWithFaults.
type (
	// FaultInjector is the deterministic, seeded fault injector.
	FaultInjector = fault.Injector
	// FaultSchedule is a reproducible fault schedule.
	FaultSchedule = fault.Schedule
	// FaultRule is one fault-injection rule of a schedule.
	FaultRule = fault.Rule
	// FaultKind enumerates the injectable fault classes.
	FaultKind = fault.Kind
)

// Injectable fault classes (see fault.Kind).
const (
	FaultModelError   = fault.KindModelError
	FaultModelTimeout = fault.KindModelTimeout
	FaultStoreWrite   = fault.KindStoreWrite
	FaultStoreRead    = fault.KindStoreRead
	FaultSourceStall  = fault.KindSourceStall
	FaultSourceDrop   = fault.KindSourceDrop
)

// NewFaultInjector builds an injector from a schedule.
var NewFaultInjector = fault.New

// NewSharedCache creates a cache for WithSharedCache.
func NewSharedCache() *exec.SharedCache { return exec.NewSharedCache() }

// NewPlanCache creates a cache for WithPlanCache.
func NewPlanCache() *plan.PlanCache { return plan.NewPlanCache() }

// NewResultCache creates a cache for WithResultCache.
func NewResultCache() *plan.ResultCache { return plan.NewResultCache() }

func (s *Session) planner(opts ...Option) (*plan.Planner, *config, error) {
	cfg := &config{planOpts: plan.Options{Env: s.env, Registry: s.registry}}
	for _, o := range opts {
		o(cfg)
	}
	cfg.planOpts.Env = s.env
	cfg.planOpts.Registry = s.registry
	pl, err := plan.NewPlanner(cfg.planOpts)
	return pl, cfg, err
}

// Execute plans and runs a query node over a video.
func (s *Session) Execute(node QueryNode, v *Video, opts ...Option) (*RunResult, error) {
	pl, _, err := s.planner(opts...)
	if err != nil {
		return nil, err
	}
	return pl.Run(node, v)
}

// ExecuteAll plans and runs several query nodes over one video on a
// worker pool, sharing one cross-query cache (§4.2's reuse turned into
// wall-clock speedup: the serving mode for many concurrent queries on
// the same stream). workers <= 1 runs sequentially, workers <= 0 uses
// GOMAXPROCS. Results align positionally with nodes and are identical
// to sequential execution; per-worker virtual clocks are merged into
// the session ledger.
func (s *Session) ExecuteAll(nodes []QueryNode, v *Video, workers int, opts ...Option) ([]*RunResult, error) {
	pl, _, err := s.planner(opts...)
	if err != nil {
		return nil, err
	}
	return pl.RunAll(nodes, v, workers)
}

// ExecuteShared plans and runs several query nodes over one frame
// source in a single shared pass: every node compiles to the unified
// operator IR, the cross-query dedup pass merges structurally identical
// scan prefixes (same frame-filter chain and detector over the same
// source), and the MuxStream layer decodes each frame exactly once,
// running each shared detect/track group once per frame and fanning the
// results out to per-query operators. Results align positionally with
// nodes and are identical to sequential per-query execution; shared
// scan costs are split across the queries riding them in the ledger.
func (s *Session) ExecuteShared(nodes []QueryNode, src FrameSource, opts ...Option) ([]*RunResult, error) {
	pl, _, err := s.planner(opts...)
	if err != nil {
		return nil, err
	}
	return pl.RunShared(nodes, src)
}

// OpenShared plans several basic queries (profiling on the optional
// canary video) and returns a MuxStream to Feed frames into — the
// streaming flavour of ExecuteShared, for live multi-query serving on
// one camera. fps annotates the per-query results.
func (s *Session) OpenShared(qs []*Query, canary *Video, fps int, opts ...Option) (*MuxStream, error) {
	pl, cfg, err := s.planner(opts...)
	if err != nil {
		return nil, err
	}
	plans := make([]*exec.Plan, len(qs))
	for i, q := range qs {
		p, _, err := pl.PlanBasic(q, canary)
		if err != nil {
			return nil, err
		}
		plans[i] = p
	}
	// A WithSharedCache cache reaches the mux so several streams (e.g.
	// one per camera) can share detection work; OpenMux creates a
	// stream-private cache otherwise.
	ex, err := exec.NewExecutor(exec.Options{Env: s.env, Registry: s.registry, Cache: cfg.planOpts.Cache, Faults: s.faults})
	if err != nil {
		return nil, err
	}
	m, err := ex.OpenMux(plans, fps)
	if err != nil {
		return nil, err
	}
	// A WithStore store is keyed by the canary video's name: the canary
	// doubles as the stream's source on this path (examples feed its
	// frames), giving scan groups persistence and AttachQueryBackfill a
	// frame source to replay.
	if cfg.planOpts.Store != nil && canary != nil {
		m.BindStore(cfg.planOpts.Store, canary)
	}
	return m, nil
}

// Serve opens an empty dynamic MuxStream for live serving: queries come
// and go through AttachQuery / MuxStream.Detach while frames keep
// flowing. Feeding with no queries attached is legal and does no model
// work, so a serving daemon can start the frame ticker before the first
// query registers. fps annotates per-query results.
func (s *Session) Serve(fps int, opts ...Option) (*MuxStream, error) {
	_, cfg, err := s.planner(opts...)
	if err != nil {
		return nil, err
	}
	ex, err := exec.NewExecutor(exec.Options{Env: s.env, Registry: s.registry, Cache: cfg.planOpts.Cache, Faults: s.faults})
	if err != nil {
		return nil, err
	}
	return ex.OpenDynamicMux(fps), nil
}

// PlanQuery plans a basic query (profiling on the optional canary
// video) and guarantees a per-frame cost estimate: single-candidate
// plans skip selection profiling, so they are profiled explicitly here.
// This is the planning half of AttachQuery — the serving layer calls it
// separately when it must make an admission decision (Plan.EstPerFrameMS
// against the budget) before creating any lane state.
func (s *Session) PlanQuery(q *Query, canary *Video, opts ...Option) (*Plan, error) {
	pl, _, err := s.planner(opts...)
	if err != nil {
		return nil, err
	}
	p, _, err := pl.PlanBasic(q, canary)
	if err != nil {
		return nil, err
	}
	if canary != nil && p.EstPerFrameMS == 0 {
		if err := pl.ProfileCost(p, canary); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// AttachQuery plans a basic query (profiling on the optional canary
// video) and attaches it to a running MuxStream mid-stream: the query
// joins an existing scan group when its scan prefix matches one
// (warm-starting from the group's shared tracker state) or spins up a
// new group. It returns the lane id (pass it to MuxStream.Detach /
// MuxStream.Snapshot) and the selected physical plan, whose EstCostMS
// the serving layer uses for admission control.
func (s *Session) AttachQuery(m *MuxStream, q *Query, canary *Video, opts ...Option) (int, *Plan, error) {
	p, err := s.PlanQuery(q, canary, opts...)
	if err != nil {
		return 0, nil, err
	}
	id, err := m.Attach(p)
	if err != nil {
		return 0, nil, err
	}
	return id, p, nil
}

// AttachQueryBackfill is AttachQuery with history: after planning, the
// query is attached through MuxStream.AttachBackfill, which replays it
// over every frame the stream already scanned using the bound store's
// archived scan output — so its result is bit-identical to having been
// attached at frame zero. The stream must have a store and frame source
// bound (Session.OpenShared with WithStore, or MuxStream.BindStore) and
// the store must cover the already-scanned frames; otherwise the attach
// fails without perturbing the stream.
func (s *Session) AttachQueryBackfill(m *MuxStream, q *Query, canary *Video, opts ...Option) (int, *Plan, error) {
	p, err := s.PlanQuery(q, canary, opts...)
	if err != nil {
		return 0, nil, err
	}
	id, err := m.AttachBackfill(p)
	if err != nil {
		return 0, nil, err
	}
	return id, p, nil
}

// SetOffloadLatency models accelerator-offloaded inference: every
// charged virtual millisecond makes the charging goroutine sleep
// nsPerVirtualMS nanoseconds instead of spinning the CPU. Concurrent
// queries overlap these waits like a real serving system overlaps
// device inference, so ExecuteAll benchmarks show genuine wall-clock
// speedup even on a single core. 0 restores the default burn behaviour.
func (s *Session) SetOffloadLatency(nsPerVirtualMS float64) {
	s.env.OffloadNSPerMS = nsPerVirtualMS
}

// Stream is an incremental execution over frames arriving in real time
// (§4.1's streaming mode); Verdict is its per-frame outcome.
type (
	Stream  = exec.Stream
	Verdict = exec.Verdict
	// MuxStream is the shared-scan multiplexer returned by OpenShared
	// and Serve; Attach/Detach change its query set while it runs.
	MuxStream = exec.MuxStream
	// Result is the raw per-query execution result the streaming paths
	// return (Stream.Close, MuxStream.Close/Detach/Snapshot).
	Result = exec.Result
	// LaneStat is one live query lane's accounting on a MuxStream.
	LaneStat = exec.LaneStat
	// GroupStat is one live scan group's accounting on a MuxStream.
	GroupStat = exec.GroupStat
)

// OpenStream plans a basic query (profiling on the optional canary
// video) and returns a Stream to Feed frames into. fps annotates the
// final result for duration/window conversion.
func (s *Session) OpenStream(q *Query, canary *Video, fps int, opts ...Option) (*Stream, error) {
	pl, cfg, err := s.planner(opts...)
	if err != nil {
		return nil, err
	}
	p, _, err := pl.PlanBasic(q, canary)
	if err != nil {
		return nil, err
	}
	ex, err := exec.NewExecutor(exec.Options{Env: s.env, Registry: s.registry, Cache: cfg.planOpts.Cache, Faults: s.faults})
	if err != nil {
		return nil, err
	}
	return ex.OpenStream(p, fps)
}

// Explain returns the selected plan and all profiled candidates for a
// basic query without executing it in full.
func (s *Session) Explain(q *Query, v *Video, opts ...Option) (*Plan, []*Plan, error) {
	pl, _, err := s.planner(opts...)
	if err != nil {
		return nil, nil, err
	}
	return pl.PlanBasic(q, v)
}
