package vqpy_test

import (
	"strings"
	"testing"

	"vqpy"

	"vqpy/internal/models"
	"vqpy/internal/video"
)

func newTestSession(seed uint64) *vqpy.Session {
	s := vqpy.NewSession(seed)
	s.SetNoBurn(true)
	return s
}

func TestQuickstartFlow(t *testing.T) {
	s := newTestSession(42)
	v := vqpy.GenerateVideo(vqpy.DatasetCityFlow(42, 30))
	q := vqpy.NewQuery("RedCar").
		Use("car", vqpy.Car()).
		Where(vqpy.And(
			vqpy.P("car", vqpy.PropScore).Gt(0.6),
			vqpy.P("car", "color").Eq("red"),
		)).
		FrameOutput(vqpy.Sel("car", vqpy.PropTrackID), vqpy.Sel("car", "plate"))
	res, err := s.Execute(q, v)
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchedCount() == 0 {
		t.Error("no red cars found")
	}
	if res.VirtualMS <= 0 || s.Clock().TotalMS() <= 0 {
		t.Error("no cost accounted")
	}
}

func TestLibraryVObjsValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		t    *vqpy.VObjType
	}{
		{"Car", vqpy.Car()},
		{"Bus", vqpy.Bus()},
		{"RedCar", vqpy.RedCar()},
		{"Person", vqpy.Person()},
		{"Ball", vqpy.Ball()},
		{"SuspectPerson", vqpy.SuspectPerson(make([]float64, 16), 10)},
	} {
		if err := tc.t.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestLibrarySpeedQuery(t *testing.T) {
	s := newTestSession(43)
	sc := vqpy.DatasetSouthampton(43, 20)
	sc.SpeederFrac = 0.4
	v := vqpy.GenerateVideo(sc)
	q := vqpy.SpeedQuery("Speeding", "car", vqpy.Car(), 12)
	res, err := s.Execute(q, v)
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchedCount() == 0 {
		t.Error("no speeders found")
	}
}

func TestLibraryCollisionQuery(t *testing.T) {
	s := newTestSession(44)
	v := vqpy.GenerateVideo(vqpy.DatasetPickup(44, 40))
	sq, err := vqpy.CollisionQuery("Collision", vqpy.Car(), vqpy.Person(), 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Execute(sq, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matched) == 0 {
		t.Error("collision query processed no frames")
	}
}

func TestOptionsCompose(t *testing.T) {
	s := newTestSession(45)
	v := vqpy.GenerateVideo(vqpy.DatasetCityFlow(45, 20))
	q := vqpy.NewQuery("RedCar").
		Use("car", vqpy.Car()).
		Where(vqpy.P("car", "color").Eq("red"))
	res, err := s.Execute(q, v,
		vqpy.WithBatchSize(4),
		vqpy.WithAccuracyTarget(0.8),
		vqpy.WithCanaryFrames(10),
		vqpy.WithoutMemo(),
		vqpy.WithoutFrameFilters(),
		vqpy.WithoutSpecialized(),
		vqpy.WithoutFusion(),
		vqpy.WithoutLazy(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Basic.MemoHits != 0 {
		t.Error("WithoutMemo leaked memoization")
	}
}

func TestSharedCacheOption(t *testing.T) {
	s := newTestSession(46)
	v := vqpy.GenerateVideo(vqpy.DatasetCityFlow(46, 20))
	cache := vqpy.NewSharedCache()
	q := func(name string) *vqpy.Query {
		return vqpy.NewQuery(name).
			Use("car", vqpy.Car()).
			Where(vqpy.P("car", "color").Eq("red"))
	}
	if _, err := s.Execute(q("A"), v, vqpy.WithSharedCache(cache)); err != nil {
		t.Fatal(err)
	}
	before := s.Clock().Account("yolox")
	if _, err := s.Execute(q("B"), v, vqpy.WithSharedCache(cache)); err != nil {
		t.Fatal(err)
	}
	if after := s.Clock().Account("yolox"); after != before {
		t.Errorf("shared cache did not prevent re-detection: %.0f -> %.0f", before, after)
	}
}

func TestPlanCacheOption(t *testing.T) {
	s := newTestSession(47)
	v := vqpy.GenerateVideo(vqpy.DatasetCityFlow(47, 20))
	pc := vqpy.NewPlanCache()
	q := vqpy.NewQuery("RedCar").
		Use("car", vqpy.RedCar()).
		Where(vqpy.P("car", "color").Eq("red"))
	p1, _, err := s.Explain(q, v, vqpy.WithPlanCache(pc))
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := s.Explain(q, v, vqpy.WithPlanCache(pc))
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("plan cache miss on identical query")
	}
}

func TestRegisterModel(t *testing.T) {
	s := newTestSession(48)
	err := s.RegisterModel(models.Profile{
		Name: "my_red_car", Task: models.TaskDetect,
		CostMS: 4, Classes: []video.Class{video.ClassCar},
		ColorFilter: video.ColorRed, MissRate: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Registry().Detector("my_red_car"); err != nil {
		t.Errorf("registered model not usable: %v", err)
	}
	if err := s.RegisterModel(models.Profile{}); err == nil {
		t.Error("empty profile accepted")
	}
	if err := s.RegisterModel(models.Profile{Name: "x", Task: models.Task(99)}); err == nil {
		t.Error("unknown task accepted")
	}
}

func TestCustomSpecializedNNFlow(t *testing.T) {
	// The full Figure 11 workflow: register a user model, attach it to
	// a VObj, and verify the planner considers it.
	s := newTestSession(49)
	if err := s.RegisterModel(models.Profile{
		Name: "my_red_car", Task: models.TaskDetect,
		CostMS: 4, Classes: []video.Class{video.ClassCar},
		ColorFilter: video.ColorRed, MissRate: 0.08, JitterPx: 3,
	}); err != nil {
		t.Fatal(err)
	}
	car := vqpy.Car().Extend("MyRedCar").RegisterSpecializedNN("my_red_car")
	q := vqpy.NewQuery("MyRedCarQuery").
		Use("car", car).
		Where(vqpy.P("car", "color").Eq("red"))
	v := vqpy.GenerateVideo(vqpy.DatasetCityFlow(49, 30))
	_, all, err := s.Explain(q, v, vqpy.WithAccuracyTarget(0.7))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range all {
		if strings.Contains(p.String(), "my_red_car") {
			found = true
		}
	}
	if !found {
		t.Error("user specialized NN not considered by planner")
	}
}

func TestHigherOrderThroughFacade(t *testing.T) {
	s := newTestSession(50)
	v := vqpy.GenerateVideo(vqpy.DatasetRetail(50, 60))
	base := vqpy.NewQuery("P").
		Use("p", vqpy.Person()).
		Where(vqpy.P("p", vqpy.PropScore).Gt(0.5))
	dur, err := vqpy.NewDurationQuery("Loiter", base, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Execute(dur, v)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range res.Events {
		if ev.Frames() < 10*res.FPS {
			t.Errorf("event %v shorter than 10s", ev)
		}
	}
}

func TestDeterministicAcrossSessions(t *testing.T) {
	run := func() (int, float64) {
		s := newTestSession(51)
		v := vqpy.GenerateVideo(vqpy.DatasetCityFlow(51, 20))
		q := vqpy.NewQuery("RedCar").
			Use("car", vqpy.Car()).
			Where(vqpy.P("car", "color").Eq("red"))
		res, err := s.Execute(q, v)
		if err != nil {
			t.Fatal(err)
		}
		return res.MatchedCount(), res.VirtualMS
	}
	c1, ms1 := run()
	c2, ms2 := run()
	if c1 != c2 || ms1 != ms2 {
		t.Errorf("non-deterministic: (%d, %.1f) vs (%d, %.1f)", c1, ms1, c2, ms2)
	}
}

func TestVideoConstraintThroughFacade(t *testing.T) {
	// Figure 7: count vehicles turning right over the whole video.
	s := newTestSession(52)
	v := vqpy.GenerateVideo(vqpy.DatasetCityFlow(52, 60))
	q := vqpy.NewQuery("RightTurnFlow").
		Use("car", vqpy.Car()).
		VideoWhere(vqpy.P("car", "direction").Eq("right")).
		CountDistinct("car")
	res, err := s.Execute(q, v)
	if err != nil {
		t.Fatal(err)
	}
	truth := 0
	gtv := vqpy.DatasetCityFlow(52, 60).Generate()
	truth = gtv.GroundTruthCount(func(o video.Object) bool {
		return o.IsVehicle() && o.Dir.String() == "right"
	})
	if truth > 0 && res.Basic.Count == 0 {
		t.Error("no right turns counted")
	}
	t.Logf("counted %d right-turning vehicles (ground truth %d)", res.Basic.Count, truth)
}
